package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Server-side latency scraping: after a load run, shill-load fetches
// the daemon's /metrics, parses the shilld_run_seconds histogram
// family, and compares the server's view of each outcome's latency
// against the client-side percentiles it measured itself. The two views
// bracket the wire: the server times from admission to response
// shaping, the client adds transport and queueing ahead of admission —
// they should agree within the histogram's bucket resolution, and a
// larger gap means time is going somewhere neither side accounts for.

// HistBucket is one cumulative bucket of a scraped histogram.
type HistBucket struct {
	// LE is the bucket's upper bound in seconds; +Inf for the last.
	LE float64 `json:"le"`
	// Count is the cumulative observations at or below LE.
	Count int64 `json:"count"`
}

// HistSnapshot is one scraped histogram series (one label set).
type HistSnapshot struct {
	Buckets []HistBucket `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   int64        `json:"count"`
}

// Sub returns the delta snapshot h−prev: the observations recorded
// between two scrapes of a cumulative histogram. A prev with a
// different bucket layout (or none) yields h unchanged.
func (h HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	if len(prev.Buckets) != len(h.Buckets) {
		return h
	}
	out := HistSnapshot{
		Buckets: make([]HistBucket, len(h.Buckets)),
		Sum:     h.Sum - prev.Sum,
		Count:   h.Count - prev.Count,
	}
	for i, b := range h.Buckets {
		if prev.Buckets[i].LE != b.LE {
			return h
		}
		out.Buckets[i] = HistBucket{LE: b.LE, Count: b.Count - prev.Buckets[i].Count}
	}
	return out
}

// Quantile estimates the q-quantile in seconds by linear interpolation
// over the cumulative buckets — the histogram_quantile estimate, with
// the same bucket-resolution error bars. Returns 0 when empty.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	for i, b := range h.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.Buckets[i-1].LE
		}
		hi := b.LE
		if math.IsInf(hi, 1) {
			// The +Inf bucket has no width; report its lower bound.
			return lo
		}
		prev := int64(0)
		if i > 0 {
			prev = h.Buckets[i-1].Count
		}
		inBucket := b.Count - prev
		if inBucket == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(inBucket)
	}
	return h.Buckets[len(h.Buckets)-1].LE
}

// ParseHistogram extracts one histogram family from Prometheus text
// exposition, keyed by the value of its (single) non-le label; a series
// with no label beyond le keys as "".
func ParseHistogram(text, family string) map[string]HistSnapshot {
	out := map[string]HistSnapshot{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family+"_") {
			continue
		}
		rest := line[len(family)+1:]
		switch {
		case strings.HasPrefix(rest, "bucket{"):
			labels, value, ok := splitSample(rest[len("bucket"):])
			if !ok {
				continue
			}
			le, hasLE := labels["le"]
			if !hasLE {
				continue
			}
			bound, err := parseBound(le)
			if err != nil {
				continue
			}
			key := seriesKey(labels)
			h := out[key]
			h.Buckets = append(h.Buckets, HistBucket{LE: bound, Count: int64(value)})
			out[key] = h
		case strings.HasPrefix(rest, "sum"):
			labels, value, ok := splitSample(rest[len("sum"):])
			if !ok {
				continue
			}
			h := out[seriesKey(labels)]
			h.Sum = value
			out[seriesKey(labels)] = h
		case strings.HasPrefix(rest, "count"):
			labels, value, ok := splitSample(rest[len("count"):])
			if !ok {
				continue
			}
			h := out[seriesKey(labels)]
			h.Count = int64(value)
			out[seriesKey(labels)] = h
		}
	}
	return out
}

// seriesKey is the value of the first label that isn't le — our
// families carry at most one.
func seriesKey(labels map[string]string) string {
	for k, v := range labels {
		if k != "le" {
			return v
		}
	}
	return ""
}

// splitSample parses `{a="x",le="0.5"} 12` (or ` 12` with no label set)
// into its labels and value.
func splitSample(s string) (map[string]string, float64, bool) {
	labels := map[string]string{}
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "{") {
		end := strings.Index(s, "}")
		if end < 0 {
			return nil, 0, false
		}
		for _, pair := range strings.Split(s[1:end], ",") {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				continue
			}
			val, err := strconv.Unquote(strings.TrimSpace(pair[eq+1:]))
			if err != nil {
				return nil, 0, false
			}
			labels[strings.TrimSpace(pair[:eq])] = val
		}
		s = strings.TrimSpace(s[end+1:])
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return nil, 0, false
	}
	return labels, v, true
}

func parseBound(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(le, 64)
}

// ScrapeRunSeconds fetches baseURL/metrics and returns the
// shilld_run_seconds family keyed by outcome (allow/deny/cancel/error).
// Scrape once before and once after a run and Sub the snapshots to get
// the run's own delta — the histograms are cumulative over the daemon's
// lifetime.
func ScrapeRunSeconds(ctx context.Context, client *http.Client, baseURL string) (map[string]HistSnapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	return ParseHistogram(string(body), "shilld_run_seconds"), nil
}

// DisagreeBarPct is the client-vs-server percentile gap that gets
// flagged: past this the two views of the same latency no longer
// bracket each other within bucket resolution.
const DisagreeBarPct = 10.0

// ServerComparison is one outcome's client-vs-server percentile
// comparison.
type ServerComparison struct {
	Outcome string `json:"outcome"`
	// Client percentiles come from the load generator's own stopwatch.
	ClientP50Ms float64 `json:"clientP50Ms"`
	ClientP99Ms float64 `json:"clientP99Ms"`
	// Server percentiles are histogram_quantile estimates over the
	// daemon's shilld_run_seconds delta for this run.
	ServerCount int64   `json:"serverCount"`
	ServerP50Ms float64 `json:"serverP50Ms"`
	ServerP99Ms float64 `json:"serverP99Ms"`
	// Deltas are (server−client)/client in percent; negative means the
	// server saw less time than the client (transport + pre-admission).
	DeltaP50Pct float64 `json:"deltaP50Pct"`
	DeltaP99Pct float64 `json:"deltaP99Pct"`
	// Disagree flags |delta| > DisagreeBarPct at p50 or p99.
	Disagree bool `json:"disagree"`
}

// CompareServer lines the report's client-side percentiles up against
// scraped before/after server histograms, outcome by outcome.
func CompareServer(rep *Report, before, after map[string]HistSnapshot) []ServerComparison {
	var out []ServerComparison
	for _, oc := range []struct {
		name   string
		client LatencySummary
	}{
		{"allow", rep.AllowLatency},
		{"deny", rep.DenyLatency},
		{"cancel", rep.CancelLatency},
	} {
		h := after[oc.name].Sub(before[oc.name])
		if oc.client.Count == 0 && h.Count == 0 {
			continue
		}
		c := ServerComparison{
			Outcome:     oc.name,
			ClientP50Ms: oc.client.P50Ms,
			ClientP99Ms: oc.client.P99Ms,
			ServerCount: h.Count,
			ServerP50Ms: h.Quantile(0.50) * 1000,
			ServerP99Ms: h.Quantile(0.99) * 1000,
		}
		if oc.client.P50Ms > 0 {
			c.DeltaP50Pct = (c.ServerP50Ms - c.ClientP50Ms) / c.ClientP50Ms * 100
		}
		if oc.client.P99Ms > 0 {
			c.DeltaP99Pct = (c.ServerP99Ms - c.ClientP99Ms) / c.ClientP99Ms * 100
		}
		c.Disagree = oc.client.Count > 0 && h.Count > 0 &&
			(math.Abs(c.DeltaP50Pct) > DisagreeBarPct || math.Abs(c.DeltaP99Pct) > DisagreeBarPct)
		out = append(out, c)
	}
	return out
}
