// Package loadgen is the closed-loop load generator behind
// cmd/shill-load and `benchfig -fig serve`: N concurrent clients drive
// a shilld endpoint with a configurable mix of allowed, denied, and
// cancelled runs, verify each response's shape (a deny response must
// carry structured provenance; a cancel response must report
// cancellation), and report throughput plus a latency histogram.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/server"
)

// Mix is the request blend in percent; the three fields must sum to
// 100. Kinds are interleaved deterministically, so e.g. 60/30/10 sends
// exactly that blend regardless of scheduling.
type Mix struct {
	AllowPct  int `json:"allowPct"`
	DenyPct   int `json:"denyPct"`
	CancelPct int `json:"cancelPct"`
}

// DefaultMix is 60% allowed, 30% denied, 10% cancelled.
var DefaultMix = Mix{AllowPct: 60, DenyPct: 30, CancelPct: 10}

// Config tunes a load run.
type Config struct {
	// URL is the shilld base URL (e.g. http://127.0.0.1:8377).
	URL string
	// Clients is the closed-loop concurrency. Default 16.
	Clients int
	// Requests is the total request budget across all clients; 0 means
	// run until Duration elapses.
	Requests int
	// Duration bounds the run in time; 0 means run until Requests.
	Duration time.Duration
	// Mix is the request blend; zero value means DefaultMix.
	Mix Mix
	// Tenants spreads requests round-robin over this many tenants
	// (t0, t1, …). Default 4.
	Tenants int
	// DeadlineMs is the allow/deny request deadline. Default 10000.
	DeadlineMs int
	// AllowArgv, when set, makes the allow kind run this native argv
	// instead of the inline allow script. The command must print
	// exactly "ok" (the allow-shape check still expects console
	// "ok\n"); the canonical choice is ["echo", "ok"]. Argv runs take
	// the kernel spawn path, so with a machine built
	// WithSpawnLatency they model a latency-bound workload — what the
	// cluster scaling figure needs on a small host.
	AllowArgv []string
	// CancelDeadlineMs is the short deadline that forces the cancel
	// kind's blocking script to be killed server-side. Default 80.
	CancelDeadlineMs int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Requests <= 0 && c.Duration <= 0 {
		c.Requests = 256
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 10_000
	}
	if c.CancelDeadlineMs <= 0 {
		c.CancelDeadlineMs = 80
	}
	return c
}

// LatencySummary condenses a latency sample set.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// Report is the outcome of one load run; it doubles as the
// BENCH_serve.json document.
type Report struct {
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	ElapsedSec float64 `json:"elapsedSec"`
	ReqPerSec  float64 `json:"reqPerSec"`

	Allowed  int `json:"allowed"`
	Denied   int `json:"denied"`
	Canceled int `json:"canceled"`
	// Rejected counts 429 backpressure answers (they are the admission
	// control working, not failures).
	Rejected int `json:"rejected"`
	// HTTPErrors counts transport failures and unexpected statuses.
	HTTPErrors int `json:"httpErrors"`
	// BadAllow / BadDeny / BadCancel count responses whose shape was
	// wrong: an allowed run that failed, a denied run without
	// structured provenance, a cancel run that was not cancelled. A
	// healthy server reports zero for all three.
	BadAllow  int `json:"badAllow"`
	BadDeny   int `json:"badDeny"`
	BadCancel int `json:"badCancel"`

	Latency       LatencySummary `json:"latency"`
	AllowLatency  LatencySummary `json:"allowLatency"`
	DenyLatency   LatencySummary `json:"denyLatency"`
	CancelLatency LatencySummary `json:"cancelLatency"`
	// DenyOverheadPct is the deny-path p50 relative to the allow-path
	// p50, in percent — the cost of producing a denial with provenance.
	DenyOverheadPct float64 `json:"denyOverheadPct"`

	// Server holds the client-vs-server percentile comparison when the
	// caller scraped the daemon's /metrics histograms around the run
	// (CompareServer); empty when it didn't.
	Server []ServerComparison `json:"server,omitempty"`
}

// Bad reports whether any response had the wrong shape.
func (r *Report) Bad() int { return r.BadAllow + r.BadDeny + r.BadCancel }

// The request kinds. Allow and deny go through built-in scripts every
// default shilld machine resolves; cancel blocks on a socket accept
// (each request on its own port so concurrent cancels don't collide)
// until its short deadline kills it server-side.
const (
	kindAllow = iota
	kindDeny
	kindCancel
)

const allowScript = "#lang shill/ambient\n\nappend(stdout, \"ok\\n\");\n"

func cancelScript(port int) string {
	return fmt.Sprintf(`#lang shill/ambient
require shill/sockets;

append(stdout, "blocking\n");
f = socket_factory("ip");
l = socket_listen(f, "%d");
c = socket_accept(l);
`, port)
}

// Run drives the configured load and returns the report. ctx aborts
// the run early (the report covers what was sent).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Mix.AllowPct+cfg.Mix.DenyPct+cfg.Mix.CancelPct != 100 {
		return nil, fmt.Errorf("loadgen: mix %d/%d/%d does not sum to 100",
			cfg.Mix.AllowPct, cfg.Mix.DenyPct, cfg.Mix.CancelPct)
	}

	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	// A private transport, closed on return, so a caller checking for
	// goroutine leaks after a run doesn't see lingering keep-alives.
	transport := &http.Transport{MaxIdleConnsPerHost: cfg.Clients}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	type obs struct {
		kind    int
		status  int
		latency time.Duration
		resp    *server.RunResponse
		err     error
	}
	var mu sync.Mutex
	var all []obs

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := issued.Add(1) - 1
				if cfg.Requests > 0 && i >= int64(cfg.Requests) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				o := obs{kind: kindOf(cfg.Mix, i)}
				reqStart := time.Now()
				o.status, o.resp, o.err = one(ctx, client, cfg, o.kind, i)
				o.latency = time.Since(reqStart)
				mu.Lock()
				all = append(all, o)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Clients: cfg.Clients}
	var lat, latAllow, latDeny, latCancel []time.Duration
	for _, o := range all {
		rep.Requests++
		if o.err != nil {
			rep.HTTPErrors++
			continue
		}
		switch o.status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rep.Rejected++
			continue
		default:
			rep.HTTPErrors++
			continue
		}
		lat = append(lat, o.latency)
		switch o.kind {
		case kindAllow:
			latAllow = append(latAllow, o.latency)
			// No assertion on Denials: the per-run window on a shared
			// tenant machine can legitimately include a concurrent
			// neighbour's denials.
			if o.resp.ExitStatus == 0 && o.resp.Console == "ok\n" && o.resp.Error == "" {
				rep.Allowed++
			} else {
				rep.BadAllow++
			}
		case kindDeny:
			latDeny = append(latDeny, o.latency)
			if o.resp.ExitStatus != 0 && deniedWithProvenance(o.resp) {
				rep.Denied++
			} else {
				rep.BadDeny++
			}
		case kindCancel:
			latCancel = append(latCancel, o.latency)
			if o.resp.Canceled {
				rep.Canceled++
			} else {
				rep.BadCancel++
			}
		}
	}
	rep.ElapsedSec = elapsed.Seconds()
	if rep.ElapsedSec > 0 {
		rep.ReqPerSec = float64(rep.Requests) / rep.ElapsedSec
	}
	rep.Latency = summarize(lat)
	rep.AllowLatency = summarize(latAllow)
	rep.DenyLatency = summarize(latDeny)
	rep.CancelLatency = summarize(latCancel)
	if rep.AllowLatency.P50Ms > 0 {
		rep.DenyOverheadPct = (rep.DenyLatency.P50Ms - rep.AllowLatency.P50Ms) / rep.AllowLatency.P50Ms * 100
	}
	return rep, nil
}

// deniedWithProvenance checks the property the service exists for: a
// denial on the wire names its layer and what was missing.
func deniedWithProvenance(r *server.RunResponse) bool {
	for _, d := range r.Denials {
		if d.Layer == audit.LayerCapability && !d.Missing.Empty() && len(d.Blame) > 0 {
			return true
		}
	}
	return false
}

// kindOf deals kinds deterministically in proportion to the mix.
func kindOf(m Mix, i int64) int {
	slot := int(i % 100)
	switch {
	case slot < m.AllowPct:
		return kindAllow
	case slot < m.AllowPct+m.DenyPct:
		return kindDeny
	default:
		return kindCancel
	}
}

// one sends a single request and decodes its response.
func one(ctx context.Context, client *http.Client, cfg Config, kind int, i int64) (int, *server.RunResponse, error) {
	req := server.RunRequest{
		Tenant:     fmt.Sprintf("t%d", i%int64(cfg.Tenants)),
		DeadlineMs: cfg.DeadlineMs,
	}
	switch kind {
	case kindAllow:
		if len(cfg.AllowArgv) > 0 {
			req.Argv = cfg.AllowArgv
		} else {
			req.Script = allowScript
		}
	case kindDeny:
		req.ScriptName = "why_denied.ambient"
	case kindCancel:
		// Ports spread over [20000, 52000) so concurrent cancels on one
		// machine don't collide.
		req.Script = cancelScript(20000 + int(i%32000))
		req.DeadlineMs = cfg.CancelDeadlineMs
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", cfg.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	var rr server.RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("bad response body: %w", err)
	}
	return resp.StatusCode, &rr, nil
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{
		Count: len(lat),
		P50Ms: ms(pct(0.50)),
		P90Ms: ms(pct(0.90)),
		P99Ms: ms(pct(0.99)),
		MaxMs: ms(lat[len(lat)-1]),
	}
}
