// Package loadgen is the closed-loop load generator behind
// cmd/shill-load and `benchfig -fig serve`: N concurrent clients drive
// a shilld endpoint with a mix of allowed, denied, and cancelled runs
// sampled from the scenario registry, verify each response's shape (a
// deny response must carry structured provenance; a cancel response
// must report cancellation), and report throughput plus a latency
// histogram.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/scenario"
	"repro/internal/server"
)

// Ratio is the request blend in percent; the three fields must sum to
// 100. Kinds are interleaved deterministically, so e.g. 60/30/10 sends
// exactly that blend regardless of scheduling.
type Ratio struct {
	AllowPct  int `json:"allowPct"`
	DenyPct   int `json:"denyPct"`
	CancelPct int `json:"cancelPct"`
}

// DefaultRatio is 60% allowed, 30% denied, 10% cancelled.
var DefaultRatio = Ratio{AllowPct: 60, DenyPct: 30, CancelPct: 10}

// kindOf deals kinds deterministically in proportion to the ratio.
func (r Ratio) kindOf(i int64) scenario.ProbeKind {
	slot := int(i % 100)
	switch {
	case slot < r.AllowPct:
		return scenario.KindAllow
	case slot < r.AllowPct+r.DenyPct:
		return scenario.KindDeny
	default:
		return scenario.KindCancel
	}
}

// Request is one rendered load request: what to run and the shape of a
// correct answer.
type Request struct {
	Kind        scenario.ProbeKind
	Script      string
	ScriptName  string
	Argv        []string
	DeadlineMs  int    // probe-level hint; 0 defers to the Config
	WantConsole string // exact console of a correct allowed run ("" = don't check)
}

// Mix renders the i-th request of a run. Implementations must be
// deterministic in i so runs are reproducible and blends exact.
type Mix interface {
	Name() string
	Request(i int64) Request
}

// RegistryMix samples load probes from the scenario registry: every
// scenario matching the attr expression contributes its Probes, and
// the ratio deals allow/deny/cancel kinds deterministically. The
// pre-registry hardcoded bodies live on as the "legacy" scenario set,
// so MustMix("legacy", DefaultRatio) reproduces the historical
// BENCH_serve workload exactly.
type RegistryMix struct {
	name   string
	ratio  Ratio
	byKind map[scenario.ProbeKind][]scenario.Probe
}

// NewRegistryMix builds a mix from the probes of the scenarios matching
// attr. It errors on a bad expression, a ratio not summing to 100, or a
// nonzero ratio component with no probes to serve it.
func NewRegistryMix(attr string, ratio Ratio) (*RegistryMix, error) {
	if ratio.AllowPct+ratio.DenyPct+ratio.CancelPct != 100 {
		return nil, fmt.Errorf("loadgen: ratio %d/%d/%d does not sum to 100",
			ratio.AllowPct, ratio.DenyPct, ratio.CancelPct)
	}
	scs, err := scenario.Select(attr)
	if err != nil {
		return nil, err
	}
	m := &RegistryMix{name: attr, ratio: ratio, byKind: make(map[scenario.ProbeKind][]scenario.Probe)}
	for _, sc := range scs {
		for _, p := range sc.Probes {
			m.byKind[p.Kind] = append(m.byKind[p.Kind], p)
		}
	}
	for kind, pct := range map[scenario.ProbeKind]int{
		scenario.KindAllow:  ratio.AllowPct,
		scenario.KindDeny:   ratio.DenyPct,
		scenario.KindCancel: ratio.CancelPct,
	} {
		if pct > 0 && len(m.byKind[kind]) == 0 {
			return nil, fmt.Errorf("loadgen: mix %q has no %s probes for a %d%% share", attr, kind, pct)
		}
	}
	return m, nil
}

// MustMix is NewRegistryMix for literal arguments; it panics on error.
func MustMix(attr string, ratio Ratio) *RegistryMix {
	m, err := NewRegistryMix(attr, ratio)
	if err != nil {
		panic(err)
	}
	return m
}

// Name identifies the mix in reports.
func (m *RegistryMix) Name() string {
	return fmt.Sprintf("%s %d/%d/%d", m.name, m.ratio.AllowPct, m.ratio.DenyPct, m.ratio.CancelPct)
}

// Request renders the i-th request, rotating deterministically through
// the kind's probes.
func (m *RegistryMix) Request(i int64) Request {
	kind := m.ratio.kindOf(i)
	ps := m.byKind[kind]
	p := ps[int(i)%len(ps)]
	pr := p.Request(i)
	return Request{
		Kind:        kind,
		Script:      pr.Script,
		ScriptName:  pr.ScriptName,
		Argv:        pr.Argv,
		DeadlineMs:  p.DeadlineMs,
		WantConsole: pr.WantConsole,
	}
}

// Config tunes a load run.
type Config struct {
	// URL is the shilld base URL (e.g. http://127.0.0.1:8377).
	URL string
	// Clients is the closed-loop concurrency. Default 16.
	Clients int
	// Requests is the total request budget across all clients; 0 means
	// run until Duration elapses.
	Requests int
	// Duration bounds the run in time; 0 means run until Requests.
	Duration time.Duration
	// Mix renders the request stream; nil means the legacy scenario set
	// at DefaultRatio — MustMix("legacy", DefaultRatio) — which
	// reproduces the pre-registry hardcoded blend, keeping BENCH_serve
	// comparable across the refactor.
	Mix Mix
	// Tenants spreads requests round-robin over this many tenants
	// (t0, t1, …). Default 4.
	Tenants int
	// DeadlineMs is the allow/deny request deadline. Default 10000.
	DeadlineMs int
	// AllowArgv, when set, makes the allow kind run this native argv
	// instead of the inline allow script. The command must print
	// exactly "ok" (the allow-shape check still expects console
	// "ok\n"); the canonical choice is ["echo", "ok"]. Argv runs take
	// the kernel spawn path, so with a machine built
	// WithSpawnLatency they model a latency-bound workload — what the
	// cluster scaling figure needs on a small host.
	AllowArgv []string
	// CancelDeadlineMs is the short deadline that forces the cancel
	// kind's blocking script to be killed server-side. Default 80.
	CancelDeadlineMs int
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Requests <= 0 && c.Duration <= 0 {
		c.Requests = 256
	}
	if c.Mix == nil {
		c.Mix = MustMix("legacy", DefaultRatio)
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 10_000
	}
	if c.CancelDeadlineMs <= 0 {
		c.CancelDeadlineMs = 80
	}
	return c
}

// LatencySummary condenses a latency sample set.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// Report is the outcome of one load run; it doubles as the
// BENCH_serve.json document.
type Report struct {
	// Mix names the request stream the run sampled (mix name plus
	// ratio), so two reports are only compared when their workloads
	// match.
	Mix        string  `json:"mix"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	ElapsedSec float64 `json:"elapsedSec"`
	ReqPerSec  float64 `json:"reqPerSec"`

	Allowed  int `json:"allowed"`
	Denied   int `json:"denied"`
	Canceled int `json:"canceled"`
	// Rejected counts 429 backpressure answers (they are the admission
	// control working, not failures).
	Rejected int `json:"rejected"`
	// HTTPErrors counts transport failures and unexpected statuses.
	HTTPErrors int `json:"httpErrors"`
	// BadAllow / BadDeny / BadCancel count responses whose shape was
	// wrong: an allowed run that failed, a denied run without
	// structured provenance, a cancel run that was not cancelled. A
	// healthy server reports zero for all three.
	BadAllow  int `json:"badAllow"`
	BadDeny   int `json:"badDeny"`
	BadCancel int `json:"badCancel"`

	Latency       LatencySummary `json:"latency"`
	AllowLatency  LatencySummary `json:"allowLatency"`
	DenyLatency   LatencySummary `json:"denyLatency"`
	CancelLatency LatencySummary `json:"cancelLatency"`
	// DenyOverheadPct is the deny-path p50 relative to the allow-path
	// p50, in percent — the cost of producing a denial with provenance.
	DenyOverheadPct float64 `json:"denyOverheadPct"`

	// Server holds the client-vs-server percentile comparison when the
	// caller scraped the daemon's /metrics histograms around the run
	// (CompareServer); empty when it didn't.
	Server []ServerComparison `json:"server,omitempty"`
}

// Bad reports whether any response had the wrong shape.
func (r *Report) Bad() int { return r.BadAllow + r.BadDeny + r.BadCancel }

// Run drives the configured load and returns the report. ctx aborts
// the run early (the report covers what was sent).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	var (
		issued   atomic.Int64
		deadline time.Time
	)
	if cfg.Duration > 0 {
		deadline = time.Now().Add(cfg.Duration)
	}
	// A private transport, closed on return, so a caller checking for
	// goroutine leaks after a run doesn't see lingering keep-alives.
	transport := &http.Transport{MaxIdleConnsPerHost: cfg.Clients}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport}

	type obs struct {
		req     Request
		status  int
		latency time.Duration
		resp    *server.RunResponse
		err     error
	}
	var mu sync.Mutex
	var all []obs

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := issued.Add(1) - 1
				if cfg.Requests > 0 && i >= int64(cfg.Requests) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				o := obs{req: cfg.Mix.Request(i)}
				reqStart := time.Now()
				o.status, o.resp, o.err = one(ctx, client, cfg, o.req, i)
				o.latency = time.Since(reqStart)
				mu.Lock()
				all = append(all, o)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Mix: cfg.Mix.Name(), Clients: cfg.Clients}
	var lat, latAllow, latDeny, latCancel []time.Duration
	for _, o := range all {
		rep.Requests++
		if o.err != nil {
			rep.HTTPErrors++
			continue
		}
		switch o.status {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			rep.Rejected++
			continue
		default:
			rep.HTTPErrors++
			continue
		}
		lat = append(lat, o.latency)
		switch o.req.Kind {
		case scenario.KindAllow:
			latAllow = append(latAllow, o.latency)
			// No assertion on Denials: the per-run window on a shared
			// tenant machine can legitimately include a concurrent
			// neighbour's denials.
			want := o.req.WantConsole
			if len(cfg.AllowArgv) > 0 {
				want = "ok\n"
			}
			if o.resp.ExitStatus == 0 && o.resp.Error == "" && (want == "" || o.resp.Console == want) {
				rep.Allowed++
			} else {
				rep.BadAllow++
			}
		case scenario.KindDeny:
			latDeny = append(latDeny, o.latency)
			if o.resp.ExitStatus != 0 && deniedWithProvenance(o.resp) {
				rep.Denied++
			} else {
				rep.BadDeny++
			}
		case scenario.KindCancel:
			latCancel = append(latCancel, o.latency)
			if o.resp.Canceled {
				rep.Canceled++
			} else {
				rep.BadCancel++
			}
		}
	}
	rep.ElapsedSec = elapsed.Seconds()
	if rep.ElapsedSec > 0 {
		rep.ReqPerSec = float64(rep.Requests) / rep.ElapsedSec
	}
	rep.Latency = summarize(lat)
	rep.AllowLatency = summarize(latAllow)
	rep.DenyLatency = summarize(latDeny)
	rep.CancelLatency = summarize(latCancel)
	if rep.AllowLatency.P50Ms > 0 {
		rep.DenyOverheadPct = (rep.DenyLatency.P50Ms - rep.AllowLatency.P50Ms) / rep.AllowLatency.P50Ms * 100
	}
	return rep, nil
}

// deniedWithProvenance checks the property the service exists for: a
// denial on the wire names its layer and what was missing.
func deniedWithProvenance(r *server.RunResponse) bool {
	for _, d := range r.Denials {
		if d.Layer == audit.LayerCapability && !d.Missing.Empty() && len(d.Blame) > 0 {
			return true
		}
	}
	return false
}

// one sends a single request and decodes its response.
func one(ctx context.Context, client *http.Client, cfg Config, r Request, i int64) (int, *server.RunResponse, error) {
	req := server.RunRequest{
		Tenant:     fmt.Sprintf("t%d", i%int64(cfg.Tenants)),
		DeadlineMs: cfg.DeadlineMs,
		Script:     r.Script,
		ScriptName: r.ScriptName,
		Argv:       r.Argv,
	}
	switch {
	case r.Kind == scenario.KindCancel:
		// The short deadline is the point: it forces the probe's
		// blocking script to be killed server-side.
		req.DeadlineMs = cfg.CancelDeadlineMs
	case r.DeadlineMs > 0:
		req.DeadlineMs = r.DeadlineMs
	}
	if r.Kind == scenario.KindAllow && len(cfg.AllowArgv) > 0 {
		req.Script, req.ScriptName, req.Argv = "", "", cfg.AllowArgv
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", cfg.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, nil
	}
	var rr server.RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("bad response body: %w", err)
	}
	return resp.StatusCode, &rr, nil
}

func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{
		Count: len(lat),
		P50Ms: ms(pct(0.50)),
		P90Ms: ms(pct(0.90)),
		P99Ms: ms(pct(0.99)),
		MaxMs: ms(lat[len(lat)-1]),
	}
}
