package loadgen

import (
	"math"
	"testing"
)

const sampleExposition = `# HELP shilld_run_seconds run latency by outcome
# TYPE shilld_run_seconds histogram
shilld_run_seconds_bucket{outcome="allow",le="0.001"} 2
shilld_run_seconds_bucket{outcome="allow",le="0.01"} 8
shilld_run_seconds_bucket{outcome="allow",le="+Inf"} 10
shilld_run_seconds_sum{outcome="allow"} 0.123
shilld_run_seconds_count{outcome="allow"} 10
shilld_run_seconds_bucket{outcome="deny",le="0.001"} 0
shilld_run_seconds_bucket{outcome="deny",le="0.01"} 4
shilld_run_seconds_bucket{outcome="deny",le="+Inf"} 4
shilld_run_seconds_sum{outcome="deny"} 0.02
shilld_run_seconds_count{outcome="deny"} 4
shilld_queue_wait_seconds_bucket{le="+Inf"} 14
shilld_queue_wait_seconds_sum 0.001
shilld_queue_wait_seconds_count 14
`

func TestParseHistogram(t *testing.T) {
	got := ParseHistogram(sampleExposition, "shilld_run_seconds")
	allow, ok := got["allow"]
	if !ok {
		t.Fatalf("no allow series: %v", got)
	}
	if allow.Count != 10 || allow.Sum != 0.123 || len(allow.Buckets) != 3 {
		t.Fatalf("allow series: %+v", allow)
	}
	if !math.IsInf(allow.Buckets[2].LE, 1) || allow.Buckets[2].Count != 10 {
		t.Fatalf("allow +Inf bucket: %+v", allow.Buckets[2])
	}
	if deny := got["deny"]; deny.Count != 4 {
		t.Fatalf("deny series: %+v", deny)
	}
	// The unlabelled family keys as "" and must not collide.
	q := ParseHistogram(sampleExposition, "shilld_queue_wait_seconds")
	if s := q[""]; s.Count != 14 || len(s.Buckets) != 1 {
		t.Fatalf("queue series: %+v", s)
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	h := ParseHistogram(sampleExposition, "shilld_run_seconds")["allow"]
	// p50: rank 5 lands in the (0.001, 0.01] bucket holding counts 3..8;
	// linear interpolation gives 0.001 + 0.009*(5-2)/6.
	want := 0.001 + 0.009*3/6
	if got := h.Quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// p100 lands in +Inf, which reports its lower bound.
	if got := h.Quantile(1.0); got != 0.01 {
		t.Fatalf("p100 = %v, want 0.01", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistSnapshotSub(t *testing.T) {
	before := ParseHistogram(sampleExposition, "shilld_run_seconds")["allow"]
	after := before
	after.Buckets = append([]HistBucket(nil), before.Buckets...)
	after.Buckets[1].Count += 5
	after.Buckets[2].Count += 5
	after.Count += 5
	after.Sum += 0.05
	d := after.Sub(before)
	if d.Count != 5 || d.Buckets[0].Count != 0 || d.Buckets[1].Count != 5 {
		t.Fatalf("delta: %+v", d)
	}
	// Layout mismatch degrades to the raw after-snapshot.
	if d := after.Sub(HistSnapshot{}); d.Count != after.Count {
		t.Fatalf("mismatched sub: %+v", d)
	}
}

func TestCompareServerFlagsDisagreement(t *testing.T) {
	rep := &Report{
		AllowLatency: LatencySummary{Count: 10, P50Ms: 10, P99Ms: 20},
	}
	// A server series whose mass sits near 2.5ms — far from the client's
	// 10ms — must be flagged.
	after := map[string]HistSnapshot{
		"allow": {
			Buckets: []HistBucket{{LE: 0.0025, Count: 10}, {LE: math.Inf(1), Count: 10}},
			Count:   10,
		},
	}
	cmp := CompareServer(rep, nil, after)
	if len(cmp) != 1 || cmp[0].Outcome != "allow" {
		t.Fatalf("comparison: %+v", cmp)
	}
	if !cmp[0].Disagree {
		t.Fatalf("10ms client vs ~2.5ms server not flagged: %+v", cmp[0])
	}
	// Agreement within the bar is not flagged.
	rep.AllowLatency = LatencySummary{Count: 10, P50Ms: 1.25, P99Ms: 2.4}
	cmp = CompareServer(rep, nil, after)
	if cmp[0].Disagree {
		t.Fatalf("in-bar comparison flagged: %+v", cmp[0])
	}
}
