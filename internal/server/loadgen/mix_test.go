package loadgen

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

func TestRegistryMixDealsRatioExactly(t *testing.T) {
	m := MustMix("legacy", DefaultRatio)
	counts := map[scenario.ProbeKind]int{}
	for i := int64(0); i < 100; i++ {
		r := m.Request(i)
		counts[r.Kind]++
		switch r.Kind {
		case scenario.KindAllow:
			if r.Script == "" && len(r.Argv) == 0 {
				t.Fatalf("allow request %d has no body", i)
			}
			if r.WantConsole == "" {
				t.Fatalf("legacy allow request %d asserts no console shape", i)
			}
		case scenario.KindDeny:
			if r.Script == "" && r.ScriptName == "" {
				t.Fatalf("deny request %d has no body", i)
			}
		case scenario.KindCancel:
			if r.Script == "" {
				t.Fatalf("cancel request %d has no blocking script", i)
			}
		}
	}
	if counts[scenario.KindAllow] != 60 || counts[scenario.KindDeny] != 30 || counts[scenario.KindCancel] != 10 {
		t.Fatalf("dealt %v, want exactly 60/30/10 per hundred requests", counts)
	}
	// Deterministic: the same index renders the same request.
	if a, b := m.Request(7), m.Request(7); a.Kind != b.Kind || a.Script != b.Script || a.ScriptName != b.ScriptName {
		t.Fatal("Request is not deterministic in i")
	}
	if !strings.Contains(m.Name(), "legacy") {
		t.Fatalf("mix name %q does not identify its scenario selection", m.Name())
	}
}

func TestNewRegistryMixErrors(t *testing.T) {
	if _, err := NewRegistryMix("legacy", Ratio{AllowPct: 50, DenyPct: 30, CancelPct: 10}); err == nil {
		t.Fatal("ratio not summing to 100 accepted")
	}
	if _, err := NewRegistryMix("definitely-bogus", DefaultRatio); err == nil {
		t.Fatal("unknown attr expression accepted")
	}
	// The build scenarios declare no load probes, so a mix demanding
	// cancels from them must fail loudly instead of dividing by zero at
	// request time.
	if _, err := NewRegistryMix("build", DefaultRatio); err == nil {
		t.Fatal("mix over probe-less scenarios accepted")
	}
	// A zero share needs no probes: 100% allow over the legacy set works
	// even if another kind's bucket were empty.
	if _, err := NewRegistryMix("legacy", Ratio{AllowPct: 100}); err != nil {
		t.Fatalf("100%% allow over legacy rejected: %v", err)
	}
}
