package server

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Parser-level exposition correctness: rather than grepping for
// substrings, parse the whole /metrics body and hold it to the text
// format's rules — HELP and TYPE precede every family's samples,
// label values are quoted strings, histogram buckets are cumulative,
// le-ordered, and end at +Inf with _sum/_count agreeing.

// expoSample is one parsed sample line.
type expoSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses a Prometheus text body, failing the test on
// any line that violates the format.
func parseExposition(t *testing.T, body string) (help, typ map[string]string, samples []expoSample) {
	t.Helper()
	help = map[string]string{}
	typ = map[string]string{}
	seenSample := map[string]bool{}

	// family maps a sample name to the family its HELP/TYPE describe:
	// histogram samples append _bucket/_sum/_count to the family name.
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typ[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(rest) != 2 || rest[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			help[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(rest) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, rest[1])
			}
			if seenSample[rest[0]] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, rest[0])
			}
			typ[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		s := expoSample{labels: map[string]string{}}
		rest := line
		if brace := strings.IndexByte(rest, '{'); brace >= 0 {
			s.name = rest[:brace]
			end := strings.IndexByte(rest, '}')
			if end < brace {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			for _, pair := range strings.Split(rest[brace+1:end], ",") {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 {
					t.Fatalf("line %d: label without '=': %q", ln+1, line)
				}
				val, err := strconv.Unquote(pair[eq+1:])
				if err != nil {
					t.Fatalf("line %d: label value not a quoted string: %q (%v)", ln+1, pair, err)
				}
				s.labels[pair[:eq]] = val
			}
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			s.name, rest = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("line %d: sample value not a float: %q (%v)", ln+1, line, err)
		}
		s.value = v

		fam := family(s.name)
		if help[fam] == "" {
			t.Fatalf("line %d: sample %s before (or without) its # HELP %s", ln+1, s.name, fam)
		}
		if typ[fam] == "" {
			t.Fatalf("line %d: sample %s before (or without) its # TYPE %s", ln+1, s.name, fam)
		}
		seenSample[fam] = true
		samples = append(samples, s)
	}
	return help, typ, samples
}

// seriesKey renders a label set minus le, deterministically.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + labels[k] + ",")
	}
	return b.String()
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// One allowed and one denied run so the histograms carry
	// observations in more than one outcome series.
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", Script: allowAmbient}); rr == nil || rr.ExitStatus != 0 {
		t.Fatalf("allow run failed: %+v", rr)
	}
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "why_denied.ambient"}); rr == nil {
		t.Fatal("deny run failed at transport")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, typ, samples := parseExposition(t, string(data))

	// The families this PR added must be present as histograms.
	for _, fam := range []string{"shilld_run_seconds", "shilld_queue_wait_seconds", "shilld_compile_seconds"} {
		if typ[fam] != "histogram" {
			t.Fatalf("family %s: TYPE = %q, want histogram", fam, typ[fam])
		}
	}

	// Histogram invariants, per series: le parses, ascends strictly,
	// counts are cumulative (non-decreasing), the last bucket is +Inf,
	// and _count equals the +Inf bucket.
	type histSeries struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
	}
	hists := map[string]map[string]*histSeries{} // family -> series key
	get := func(fam, key string) *histSeries {
		if hists[fam] == nil {
			hists[fam] = map[string]*histSeries{}
		}
		if hists[fam][key] == nil {
			hists[fam][key] = &histSeries{}
		}
		return hists[fam][key]
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.name, "_bucket") && typ[strings.TrimSuffix(s.name, "_bucket")] == "histogram":
			fam := strings.TrimSuffix(s.name, "_bucket")
			le, hasLE := s.labels["le"]
			if !hasLE {
				t.Fatalf("%s sample without le label", s.name)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: unparseable le %q", s.name, le)
				}
			}
			sr := get(fam, seriesKey(s.labels))
			sr.les = append(sr.les, bound)
			sr.counts = append(sr.counts, s.value)
		case strings.HasSuffix(s.name, "_sum") && typ[strings.TrimSuffix(s.name, "_sum")] == "histogram":
			v := s.value
			get(strings.TrimSuffix(s.name, "_sum"), seriesKey(s.labels)).sum = &v
		case strings.HasSuffix(s.name, "_count") && typ[strings.TrimSuffix(s.name, "_count")] == "histogram":
			v := s.value
			get(strings.TrimSuffix(s.name, "_count"), seriesKey(s.labels)).count = &v
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series parsed")
	}
	var observed float64
	for fam, series := range hists {
		for key, sr := range series {
			id := fam + "{" + key + "}"
			if len(sr.les) < 2 {
				t.Fatalf("%s: only %d buckets", id, len(sr.les))
			}
			for i := 1; i < len(sr.les); i++ {
				if sr.les[i] <= sr.les[i-1] {
					t.Fatalf("%s: le not strictly ascending at %d: %v", id, i, sr.les)
				}
				if sr.counts[i] < sr.counts[i-1] {
					t.Fatalf("%s: bucket counts not cumulative at %d: %v", id, i, sr.counts)
				}
			}
			if !math.IsInf(sr.les[len(sr.les)-1], 1) {
				t.Fatalf("%s: last bucket is %v, want +Inf", id, sr.les[len(sr.les)-1])
			}
			if sr.sum == nil || sr.count == nil {
				t.Fatalf("%s: missing _sum or _count", id)
			}
			if last := sr.counts[len(sr.counts)-1]; *sr.count != last {
				t.Fatalf("%s: _count %v != +Inf bucket %v", id, *sr.count, last)
			}
			observed += *sr.count
		}
	}
	if observed == 0 {
		t.Fatal("every histogram series is empty after two runs")
	}
}
