package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Serving-path bugfix coverage: the bounded console pump (a slow
// NDJSON client must cost bounded memory, visibly), the 413 on
// oversized run bodies (not a confusing JSON truncation 400), and the
// observable retained-image drop (state loss must never be silent).

// TestPumpBoundsSlowClient is the slow-client regression test: a
// client that reads nothing while the script writes far more than the
// buffer cap must leave the pump's queue bounded, and on drain the
// client must see a truncation marker accounting exactly for the bytes
// it missed — drop-oldest, so what does arrive is the freshest output.
func TestPumpBoundsSlowClient(t *testing.T) {
	p := newPump()
	total := 0
	chunk := bytes.Repeat([]byte("x"), 8<<10)
	for i := 0; i < 100; i++ { // 800 KiB into a 256 KiB budget
		n, err := p.Write(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("Write = %d, %v", n, err)
		}
		total += n
		if p.buffered > pumpMaxBuffered {
			t.Fatalf("pump buffered %d bytes, cap is %d", p.buffered, pumpMaxBuffered)
		}
	}
	p.close()

	rec := httptest.NewRecorder()
	p.pumpTo(rec, nil)

	var truncated int64
	var delivered int
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	first := true
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if ev.Truncated > 0 {
			if !first {
				t.Fatal("truncation marker did not precede the surviving console output")
			}
			truncated += ev.Truncated
		}
		delivered += len(ev.Console)
		first = false
	}
	if truncated == 0 {
		t.Fatal("800 KiB through a 256 KiB pump produced no truncation marker")
	}
	if delivered > pumpMaxBuffered {
		t.Fatalf("delivered %d bytes, more than the %d cap held", delivered, pumpMaxBuffered)
	}
	if int(truncated)+delivered != total {
		t.Fatalf("truncated %d + delivered %d != written %d: bytes unaccounted for",
			truncated, delivered, total)
	}
}

// TestPumpFastClientSeesEverything pins the no-drop case: under the
// cap, no marker, every byte arrives in order.
func TestPumpFastClientSeesEverything(t *testing.T) {
	p := newPump()
	for i := 0; i < 10; i++ {
		fmt.Fprintf(p, "line %d\n", i)
	}
	p.close()
	rec := httptest.NewRecorder()
	p.pumpTo(rec, nil)

	var got strings.Builder
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if ev.Truncated != 0 {
			t.Fatalf("unexpected truncation marker for a drained client: %+v", ev)
		}
		got.WriteString(ev.Console)
	}
	want := ""
	for i := 0; i < 10; i++ {
		want += fmt.Sprintf("line %d\n", i)
	}
	if got.String() != want {
		t.Fatalf("console = %q, want %q", got.String(), want)
	}
}

// TestRunBodyTooLarge413 pins the fix for the confusing failure mode:
// a body past the limit used to surface as 400 "unexpected EOF" from
// the truncated JSON decode; it must be 413 naming the limit.
func TestRunBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, nil)
	big, err := json.Marshal(RunRequest{
		Tenant: "alice",
		Script: "#lang shill/ambient\n# " + strings.Repeat("x", maxRunBody) + "\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, fmt.Sprint(maxRunBody)) {
		t.Fatalf("413 error %q does not name the limit", er.Error)
	}
}

// TestImageDropIsObservable drives more evicted tenants than MaxImages
// retains and checks the loss is visible: the counter moves and
// /metrics exposes it. (The drop is real state loss — the dropped
// tenant's next request boots cold — which is why silence was a bug.)
func TestImageDropIsObservable(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxMachines = 1 // every new tenant evicts (and snapshots) the last
		c.MaxImages = 2
	})

	// Five tenants in sequence: four evictions store four images, so
	// the two-image bound forces two drops.
	for i := 0; i < 5; i++ {
		tenant := fmt.Sprintf("t%d", i)
		if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: writeNoteScript(i)}); rr.ExitStatus != 0 {
			t.Fatalf("%s: %+v", tenant, rr)
		}
	}
	if got := s.RetainedImages(); got > 2 {
		t.Fatalf("retained %d images, bound is 2", got)
	}
	if got := s.met.imagesDropped.Load(); got != 2 {
		t.Fatalf("imagesDropped = %d, want 2", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "shilld_tenant_images_dropped_total 2") {
		t.Fatal("/metrics does not expose shilld_tenant_images_dropped_total 2")
	}
}
