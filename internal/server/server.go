// Package server is shilld's engine: a multi-tenant script-execution
// service over the repro/shill embedding API. Clients POST scripts (or
// native argv) with a tenant name and a deadline; the server runs them
// in pooled sandbox sessions on per-tenant machines and returns the
// exit status, console output, and the full structured denial
// provenance — a rejected request is explainable over the wire exactly
// the way `shill-audit why-denied` explains it locally.
//
// Isolation is kernel-level, not just session-level: every tenant owns
// a whole shill.Machine (own simulated kernel, filesystem image,
// network stack, audit log), held in an LRU registry bounded by
// MaxMachines. An evicted tenant's machine is snapshotted before it is
// closed, so the tenant's state (files, installed scripts, audit
// sequence) survives eviction and its next request boots from a warm
// restore; with a golden image configured, even brand-new tenants boot
// by restoring shared copy-on-write base layers instead of building a
// machine from scratch. Admission control is a bounded queue with per-tenant
// concurrency quotas; overload answers 429 with Retry-After instead of
// queueing without bound. Request deadlines and client disconnects are
// wired straight into Session.Run's context cancellation, so an
// abandoned request kills the sandboxed process tree it was running.
package server

import (
	"container/list"
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/shill"
)

// Config tunes the server; the zero value serves with the defaults
// noted on each field.
type Config struct {
	// MaxMachines caps how many tenant machines exist at once; the
	// least-recently-used idle machine is evicted (and closed) to make
	// room. Default 8.
	MaxMachines int
	// MaxConcurrent caps globally concurrent runs. Default 16.
	MaxConcurrent int
	// TenantConcurrent caps one tenant's concurrent admitted runs
	// (running or queued for a global slot). Default 4.
	TenantConcurrent int
	// MaxQueue caps how many admitted runs may wait for a global slot;
	// beyond it the server answers 429 + Retry-After. Default 64.
	MaxQueue int
	// DefaultDeadline bounds runs that specify no deadline. Default 10s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines. Default 60s.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MachineOptions builds the shill.NewMachine options for a tenant's
	// machine. Default: the demo workload (so the built-in case-study
	// scripts, including why_denied, resolve).
	MachineOptions func(tenant string) []shill.Option
	// GoldenImage, when set, boots brand-new tenants by restoring this
	// prebuilt snapshot instead of building a machine from scratch —
	// every tenant then shares the image's flattened base layers
	// copy-on-write. MachineOptions still apply on top.
	GoldenImage *shill.Image
	// MaxImages caps how many evicted tenants' snapshots are retained
	// for warm readmission; the oldest snapshot is forgotten beyond it.
	// Snapshots share their base layers with the live machines, so a
	// retained image costs only the tenant's divergence. Default 32.
	MaxImages int
}

func (c Config) withDefaults() Config {
	if c.MaxMachines <= 0 {
		c.MaxMachines = 8
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 16
	}
	if c.TenantConcurrent <= 0 {
		c.TenantConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MachineOptions == nil {
		c.MachineOptions = func(string) []shill.Option {
			return []shill.Option{shill.WithWorkload(shill.WorkloadDemo)}
		}
	}
	if c.MaxImages <= 0 {
		c.MaxImages = 32
	}
	return c
}

// Server executes tenant-submitted scripts. Create with New, serve its
// Handler, stop with Drain (or Close).
type Server struct {
	cfg   Config
	start time.Time

	slots    chan struct{} // global concurrency semaphore
	queued   atomic.Int64  // runs waiting for a slot
	draining atomic.Bool
	inflight sync.WaitGroup
	// gateMu serializes the draining flip against run admission so
	// inflight.Add can never race inflight.Wait from zero (the
	// documented sync.WaitGroup misuse): every Add happens-before
	// StartDrain returns, and Drain only Waits after StartDrain.
	gateMu sync.Mutex

	mu      sync.Mutex
	tenants map[string]*tenant
	lru     *list.List // of *tenant; front = most recently used
	closed  bool
	// images retains evicted tenants' snapshots for warm readmission,
	// bounded by cfg.MaxImages; imageOrder is insertion order (oldest
	// first) for forgetting beyond the bound.
	images     map[string]*shill.Image
	imageOrder []string
	// imported holds denial histories pushed by POST /v1/admin/denials
	// when a tenant migrates here, merged into why-denied answers.
	imported map[string][]audit.Explanation
	// handoffWant is the set of tenants that still need their state
	// exported through /v1/admin/snapshot before a drain's handoff grace
	// is satisfied; populated by StartDrain, drained by markHandoff.
	handoffWant map[string]struct{}

	met metrics

	// flight retains the K slowest complete request traces for
	// GET /v1/trace — the server's flight recorder.
	flight *flightRecorder
}

// tenant is one tenant's registry entry: its machine and its share of
// the admission accounting. A freshly inserted entry is published
// before its machine is built (ready is open, m is nil) so machine
// construction — workload staging included — never holds Server.mu;
// concurrent requests for the same tenant wait on ready.
type tenant struct {
	name   string
	elem   *list.Element
	active int // admitted runs (running or queued); guarded by Server.mu

	ready    chan struct{}  // closed when the build finished
	m        *shill.Machine // nil until ready (or on build failure)
	buildErr error          // set before ready closes on failure
}

// New builds a server. No machines exist until the first request
// names a tenant.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		tenants: make(map[string]*tenant),
		lru:     list.New(),
		flight:  newFlightRecorder(16),
	}
	s.met.initHistograms()
	return s
}

// admitError is an admission refusal with its HTTP status.
type admitError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *admitError) Error() string { return e.msg }

// acquireTenant admits one run for the tenant: it looks up (or builds)
// the tenant's machine, enforces the per-tenant quota, and bumps the
// LRU. The caller must release with releaseTenant. Machine
// construction (workload staging included) happens outside Server.mu —
// a burst of new tenants must not stall admission, /metrics, or
// /healthz for everyone else — so the entry is published first and
// concurrent requests for the same tenant wait for the build.
func (s *Server) acquireTenant(name string) (*tenant, error) {
	var evict *tenant
	var build bool
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &admitError{status: 503, msg: "server is draining"}
	}
	t := s.tenants[name]
	if t == nil {
		if len(s.tenants) >= s.cfg.MaxMachines {
			victim := s.evictLocked()
			if victim == nil {
				s.mu.Unlock()
				s.met.rejectedMachines.Add(1)
				return nil, &admitError{status: 429, retryAfter: s.cfg.RetryAfter,
					msg: fmt.Sprintf("machine registry full (%d tenants, all busy)", s.cfg.MaxMachines)}
			}
			evict = victim
		}
		t = &tenant{name: name, ready: make(chan struct{})}
		t.elem = s.lru.PushFront(t)
		s.tenants[name] = t
		build = true
	} else {
		s.lru.MoveToFront(t.elem)
	}
	if t.active >= s.cfg.TenantConcurrent {
		s.mu.Unlock()
		if evict != nil {
			s.retireTenant(evict)
		}
		s.met.rejectedQuota.Add(1)
		return nil, &admitError{status: 429, retryAfter: s.cfg.RetryAfter,
			msg: fmt.Sprintf("tenant %q is at its concurrency quota (%d)", name, s.cfg.TenantConcurrent)}
	}
	t.active++
	s.mu.Unlock()
	if evict != nil {
		s.retireTenant(evict)
	}

	if build {
		m, err := s.buildMachine(name)
		if err != nil {
			t.buildErr = fmt.Errorf("building machine for tenant %q: %w", name, err)
		}
		t.m = m
		close(t.ready)
		if err != nil {
			s.dropTenant(t)
			s.releaseTenant(t)
			return nil, t.buildErr
		}
		return t, nil
	}
	<-t.ready
	if t.buildErr != nil {
		s.releaseTenant(t)
		return nil, t.buildErr
	}
	return t, nil
}

func (s *Server) releaseTenant(t *tenant) {
	s.mu.Lock()
	t.active--
	s.mu.Unlock()
}

// dropTenant removes a failed-build entry from the registry so a later
// request can retry.
func (s *Server) dropTenant(t *tenant) {
	s.mu.Lock()
	if s.tenants[t.name] == t {
		delete(s.tenants, t.name)
		s.lru.Remove(t.elem)
	}
	s.mu.Unlock()
}

// buildMachine boots a machine for a tenant, preferring the warmest
// source available: the tenant's own evicted snapshot (its state
// survives eviction), then the configured golden image (shared
// copy-on-write base layers), then a scratch build. A snapshot that
// fails to restore is discarded and the boot falls through to the next
// source rather than failing the request.
func (s *Server) buildMachine(name string) (*shill.Machine, error) {
	opts := s.cfg.MachineOptions(name)
	s.mu.Lock()
	img := s.images[name]
	s.mu.Unlock()
	if img != nil {
		if m, err := shill.RestoreMachine(img, opts...); err == nil {
			s.met.restoresWarm.Add(1)
			return m, nil
		}
		s.forgetImage(name)
	}
	if s.cfg.GoldenImage != nil {
		if m, err := shill.RestoreMachine(s.cfg.GoldenImage, opts...); err == nil {
			s.met.restoresCold.Add(1)
			return m, nil
		}
	}
	m, err := shill.NewMachine(opts...)
	if err == nil {
		s.met.restoresCold.Add(1)
	}
	return m, err
}

// retireTenant snapshots an evicted tenant's idle machine — so its
// state (files it wrote, scripts it installed) survives the eviction
// for warm readmission — and then closes the machine. If the snapshot
// fails the state is forfeited and the tenant's next request boots
// cold.
func (s *Server) retireTenant(t *tenant) {
	if t.m == nil {
		return
	}
	if img, err := t.m.Snapshot(); err == nil {
		s.storeImage(t.name, img)
	}
	t.m.Close()
}

// storeImage retains an evicted tenant's snapshot, forgetting the
// oldest retained snapshot beyond the MaxImages bound.
func (s *Server) storeImage(name string, img *shill.Image) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.images == nil {
		s.images = make(map[string]*shill.Image)
	}
	if _, ok := s.images[name]; ok {
		s.imageOrder = removeString(s.imageOrder, name)
	}
	s.images[name] = img
	s.imageOrder = append(s.imageOrder, name)
	for len(s.images) > s.cfg.MaxImages {
		oldest := s.imageOrder[0]
		s.imageOrder = s.imageOrder[1:]
		delete(s.images, oldest)
		// The drop is real state loss — the tenant's next readmission
		// boots cold — so it must be observable, not silent.
		s.met.imagesDropped.Add(1)
		log.Printf("shilld: dropping retained image for evicted tenant %q (retained images at the MaxImages=%d bound; the tenant's next readmission boots cold)",
			oldest, s.cfg.MaxImages)
	}
}

// forgetImage drops a retained snapshot that failed to restore.
func (s *Server) forgetImage(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.images[name]; ok {
		delete(s.images, name)
		s.imageOrder = removeString(s.imageOrder, name)
	}
}

func removeString(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// RetainedImages reports how many evicted tenants' snapshots are held
// for warm readmission.
func (s *Server) RetainedImages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.images)
}

// evictLocked removes the least-recently-used idle tenant from the
// registry and returns it (its machine is snapshotted and closed by
// the caller outside the lock); nil when every tenant has runs in
// flight.
func (s *Server) evictLocked() *tenant {
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		t := e.Value.(*tenant)
		if t.active == 0 {
			s.lru.Remove(e)
			delete(s.tenants, t.name)
			s.met.evictions.Add(1)
			return t
		}
	}
	return nil
}

// lookupTenant returns the tenant's registry entry without admitting a
// run (audit queries), or nil. It waits out an in-flight machine build
// so the caller always sees a usable machine.
func (s *Server) lookupTenant(name string) *tenant {
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t == nil {
		return nil
	}
	<-t.ready
	if t.buildErr != nil {
		return nil
	}
	return t
}

// acquireSlot takes a global concurrency slot, waiting in the bounded
// queue when all slots are busy. Release by receiving from s.slots.
func (s *Server) acquireSlot(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.met.rejectedQueue.Add(1)
		return &admitError{status: 429, retryAfter: s.cfg.RetryAfter,
			msg: fmt.Sprintf("queue full (%d waiting)", s.cfg.MaxQueue)}
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &admitError{status: 503, msg: "canceled while queued: " + ctx.Err().Error()}
	}
}

// Draining reports whether the server has stopped admitting runs.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain flips the server into draining mode: /healthz turns 503
// and new runs are refused, while in-flight runs keep going. The set
// of tenants holding state here (live machines and retained images) is
// captured once, so AwaitHandoff can wait for a router to export them.
func (s *Server) StartDrain() {
	s.gateMu.Lock()
	first := !s.draining.Load()
	s.draining.Store(true)
	s.gateMu.Unlock()
	if !first {
		return
	}
	s.mu.Lock()
	if s.handoffWant == nil {
		s.handoffWant = make(map[string]struct{})
		for name := range s.tenants {
			s.handoffWant[name] = struct{}{}
		}
		for name := range s.images {
			s.handoffWant[name] = struct{}{}
		}
	}
	s.mu.Unlock()
}

// beginRequest registers a run with the in-flight group unless the
// server is draining; the caller must inflight.Done() when it returns
// true.
func (s *Server) beginRequest() bool {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Drain gracefully stops the server: no new runs are admitted,
// in-flight runs finish (bounded by ctx), and then every tenant
// machine is closed. Returns ctx's error if in-flight runs outlive it;
// machines are closed regardless (cutting off whatever was still
// running).
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.closeMachines()
	return err
}

// Close is Drain without a bound.
func (s *Server) Close() { s.Drain(context.Background()) }

func (s *Server) closeMachines() {
	s.mu.Lock()
	s.closed = true
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.tenants = make(map[string]*tenant)
	s.lru.Init()
	s.mu.Unlock()
	for _, t := range ts {
		// A nil machine means a build abandoned by a timed-out drain;
		// there is nothing to close.
		if t.m != nil {
			t.m.Close()
		}
	}
}

// MachineStats snapshots every registered tenant machine's resource
// accounting — the per-tenant half of /metrics, and what leak checks
// compare after a load run.
func (s *Server) MachineStats() map[string]shill.MachineStats {
	s.mu.Lock()
	machines := make(map[string]*shill.Machine, len(s.tenants))
	for name, t := range s.tenants {
		if t.m != nil { // skip machines still being built
			machines[name] = t.m
		}
	}
	s.mu.Unlock()
	out := make(map[string]shill.MachineStats, len(machines))
	for name, m := range machines {
		out[name] = m.Stats()
	}
	return out
}

// Tenants reports how many tenant machines are registered.
func (s *Server) Tenants() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tenants)
}

// MachinesClosed reports whether every machine the registry ever held
// has been closed — true only after a completed drain.
func (s *Server) MachinesClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed && len(s.tenants) == 0
}
