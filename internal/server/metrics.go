package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/shill"
)

// metrics is the server's operational accounting; everything here is
// exported by GET /metrics in Prometheus text format.
type metrics struct {
	requests         atomic.Int64 // POST /v1/run received
	denied           atomic.Int64 // runs whose result carried denials
	canceled         atomic.Int64 // runs stopped by deadline/disconnect
	rejectedQueue    atomic.Int64 // 429: global queue full
	rejectedQuota    atomic.Int64 // 429: tenant quota
	rejectedMachines atomic.Int64 // 429: machine registry full
	evictions        atomic.Int64 // LRU machine evictions
	restoresWarm     atomic.Int64 // machine boots from the tenant's own evicted snapshot
	restoresCold     atomic.Int64 // machine boots from scratch or the golden image
	imagesDropped    atomic.Int64 // retained snapshots forgotten at the MaxImages bound
	restoresSeeded   atomic.Int64 // tenants seeded via POST /v1/admin/restore (migration imports)
	activeRuns       atomic.Int64 // runs currently executing

	// Latency histograms (initHistograms). runSeconds is labelled by
	// outcome; compileSeconds by compile-cache disposition, fed from the
	// compile spans of each run's trace (the single source of truth).
	runSeconds     *histVec
	queueWait      *histogram
	compileSeconds *histVec
}

// Run outcome labels for runSeconds.
const (
	outcomeAllow  = "allow"
	outcomeDeny   = "deny"
	outcomeCancel = "cancel"
	outcomeError  = "error"
)

func (m *metrics) initHistograms() {
	m.runSeconds = newHistVec("outcome", outcomeAllow, outcomeDeny, outcomeCancel, outcomeError)
	m.queueWait = newHistogram(latencyBuckets)
	m.compileSeconds = newHistVec("cache", "miss", "hit")
}

// handleMetrics renders the serving counters plus every tenant
// machine's Stats() (sessions, procs, live sockets, audit sequence) in
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	uptime := time.Since(s.start).Seconds()
	total := s.met.requests.Load()
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	counter("shilld_requests_total", "run requests received", total)
	counter("shilld_runs_denied_total", "runs whose result carried audit denials", s.met.denied.Load())
	counter("shilld_runs_canceled_total", "runs stopped by deadline or client disconnect", s.met.canceled.Load())
	counter("shilld_rejected_queue_total", "requests rejected with 429 because the queue was full", s.met.rejectedQueue.Load())
	counter("shilld_rejected_quota_total", "requests rejected with 429 at the tenant quota", s.met.rejectedQuota.Load())
	counter("shilld_rejected_machines_total", "requests rejected with 429 because the machine registry was full", s.met.rejectedMachines.Load())
	counter("shilld_machine_evictions_total", "LRU evictions of idle tenant machines", s.met.evictions.Load())
	fmt.Fprintf(w, "# HELP shilld_restores_total tenant machine boots by kind (warm: the tenant's own evicted snapshot; cold: scratch or the golden image)\n# TYPE shilld_restores_total counter\n")
	fmt.Fprintf(w, "shilld_restores_total{kind=\"warm\"} %d\n", s.met.restoresWarm.Load())
	fmt.Fprintf(w, "shilld_restores_total{kind=\"cold\"} %d\n", s.met.restoresCold.Load())
	counter("shilld_tenant_images_dropped_total", "retained snapshots forgotten at the MaxImages bound (the dropped tenant's next readmission boots cold, losing its state)", s.met.imagesDropped.Load())
	counter("shilld_admin_restores_total", "tenants seeded from an imported image via /v1/admin/restore (migrations onto this replica)", s.met.restoresSeeded.Load())
	gauge("shilld_tenant_images", "evicted tenants' snapshots retained for warm readmission", s.RetainedImages())
	gauge("shilld_active_runs", "runs currently executing", s.met.activeRuns.Load())
	gauge("shilld_queue_depth", "admitted runs waiting for a global slot", s.queued.Load())
	gauge("shilld_uptime_seconds", "seconds since the server started", fmt.Sprintf("%.3f", uptime))
	rps := 0.0
	if uptime > 0 {
		rps = float64(total) / uptime
	}
	gauge("shilld_requests_per_second", "requests_total averaged over uptime", fmt.Sprintf("%.3f", rps))

	exposeHistVec(w, "shilld_run_seconds", "run latency by outcome", s.met.runSeconds)
	fmt.Fprintf(w, "# HELP shilld_queue_wait_seconds time admitted runs waited for a global slot\n# TYPE shilld_queue_wait_seconds histogram\n")
	exposeHistogram(w, "shilld_queue_wait_seconds", "", s.met.queueWait)
	exposeHistVec(w, "shilld_compile_seconds", "script compile/parse latency by compile-cache disposition", s.met.compileSeconds)

	// Per-tenant machine stats, stable order.
	stats := s.MachineStats()
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)

	perTenant := func(name, help string, v func(shill.MachineStats) any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, n := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %v\n", name, n, v(stats[n]))
		}
	}
	perTenant("shilld_machine_sessions", "pooled session slots per tenant machine",
		func(st shill.MachineStats) any { return st.Sessions })
	perTenant("shilld_machine_idle_sessions", "idle pooled session slots per tenant machine",
		func(st shill.MachineStats) any { return st.IdleSessions })
	perTenant("shilld_machine_procs", "live kernel processes per tenant machine",
		func(st shill.MachineStats) any { return st.Procs })
	perTenant("shilld_machine_live_sockets", "live sockets on each tenant machine's network stack",
		func(st shill.MachineStats) any { return st.LiveSockets })
	perTenant("shilld_machine_audit_seq", "audit log sequence point per tenant machine",
		func(st shill.MachineStats) any { return st.AuditSeq })
}
