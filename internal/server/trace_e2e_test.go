package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/shill"
)

func getTrace(t *testing.T, url, tenant string) *TraceResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/trace?tenant=" + tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace: %d: %s", resp.StatusCode, data)
	}
	var tr TraceResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("bad trace response %s: %v", data, err)
	}
	return &tr
}

// TestQueuedMsEqualsQueueSpan pins the single-source-of-truth contract:
// the wire's queuedMs is the queue span's duration, not an independent
// stopwatch, so the two can never disagree.
func TestQueuedMsEqualsQueueSpan(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", Script: allowAmbient})
	if rr == nil || rr.ExitStatus != 0 {
		t.Fatalf("run failed: %+v", rr)
	}
	if rr.TraceID == 0 || len(rr.Trace) == 0 {
		t.Fatalf("result carries no trace: id=%d spans=%d", rr.TraceID, len(rr.Trace))
	}
	var queue *shill.Span
	for i := range rr.Trace {
		if rr.Trace[i].Kind == shill.SpanQueue {
			queue = &rr.Trace[i]
			break
		}
	}
	if queue == nil {
		t.Fatalf("no queue span in result trace (%d spans)", len(rr.Trace))
	}
	spanMs := float64(queue.Dur) / float64(time.Millisecond)
	if math.Abs(rr.QueuedMs-spanMs) > 1e-9 {
		t.Fatalf("queuedMs %v != queue span duration %v ms (span %+v)", rr.QueuedMs, spanMs, queue)
	}
}

// TestDeniedRequestDecomposition is the acceptance walkthrough: a
// denied request served by shilld decomposes post-hoc across every
// observability surface — /v1/trace returns its span tree, why-denied
// names the trace, and /metrics counts it in the deny-outcome buckets.
func TestDeniedRequestDecomposition(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, rr := postRun(t, ts.URL, RunRequest{Tenant: "e2e", ScriptName: "why_denied.ambient"})
	if rr == nil {
		t.Fatal("deny run failed at transport")
	}
	if rr.ExitStatus == 0 {
		t.Fatalf("why_denied.ambient succeeded: %+v", rr)
	}
	if rr.TraceID == 0 {
		t.Fatal("denied result carries no trace ID")
	}
	if len(rr.Denials) == 0 {
		t.Fatal("denied result carries no structured denials")
	}
	// The denial is stamped with the request's trace ID — the link
	// why-denied uses to say when in the request it landed.
	stamped := false
	for _, d := range rr.Denials {
		if d.TraceID == rr.TraceID {
			stamped = true
		}
	}
	if !stamped {
		t.Fatalf("no denial carries trace %d: %+v", rr.TraceID, rr.Denials)
	}

	// /v1/trace serves the request's full span tree: one request-kind
	// root, every other span reachable from it through parent IDs, and
	// the stages the issue names all present.
	tr := getTrace(t, ts.URL, "e2e")
	ids := map[uint64]bool{}
	kinds := map[shill.SpanKind]int{}
	var roots int
	for _, sp := range tr.Spans {
		if sp.Trace != rr.TraceID {
			continue
		}
		ids[sp.ID] = true
		kinds[sp.Kind]++
		if sp.Parent == 0 {
			roots++
			if sp.Kind != shill.SpanRequest {
				t.Fatalf("trace root is %v, want request: %+v", sp.Kind, sp)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("trace %d has %d roots, want exactly 1", rr.TraceID, roots)
	}
	for _, sp := range tr.Spans {
		if sp.Trace == rr.TraceID && sp.Parent != 0 && !ids[sp.Parent] {
			t.Fatalf("span %d has dangling parent %d: %+v", sp.ID, sp.Parent, sp)
		}
	}
	for _, want := range []shill.SpanKind{
		shill.SpanRequest, shill.SpanQueue, shill.SpanAcquire,
		shill.SpanResolve, shill.SpanRun, shill.SpanCompile, shill.SpanEval,
	} {
		if kinds[want] == 0 {
			t.Fatalf("trace %d lacks a %v span (kinds: %v)", rr.TraceID, want, kinds)
		}
	}

	// The flight recorder retained the run (only a handful have run on
	// this server, so the K-slowest set must include it).
	found := false
	for _, ft := range tr.Slowest {
		if ft.TraceID == rr.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight recorder lost trace %d (%d retained)", rr.TraceID, len(tr.Slowest))
	}

	// why-denied over the wire reports the same trace ID.
	wresp, err := http.Get(ts.URL + "/v1/audit/why-denied?tenant=e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var wd WhyDeniedResponse
	if err := json.NewDecoder(wresp.Body).Decode(&wd); err != nil {
		t.Fatal(err)
	}
	linked := false
	for _, d := range wd.Denials {
		if d.TraceID == rr.TraceID {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("why-denied does not name trace %d: %+v", rr.TraceID, wd.Denials)
	}

	// And /metrics counted the run in the deny-outcome histogram.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`shilld_run_seconds_count\{outcome="deny"\} (\d+)`).FindSubmatch(body)
	if m == nil {
		t.Fatalf("no deny-outcome run histogram in /metrics:\n%s", body)
	}
	if n, _ := strconv.Atoi(string(m[1])); n < 1 {
		t.Fatalf("deny-outcome histogram counted %d runs, want >= 1", 0)
	}
}

// TestTraceDisabledStillServes pins the escape hatch: a machine built
// WithTraceDisabled runs normally, reports queuedMs from the stopwatch
// fallback, and /v1/trace answers with an empty span stream rather
// than failing.
func TestTraceDisabledStillServes(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		inner := cfg.MachineOptions
		cfg.MachineOptions = func(tenant string) []shill.Option {
			return append(inner(tenant), shill.WithTraceDisabled())
		}
	})
	_, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", Script: allowAmbient})
	if rr == nil || rr.ExitStatus != 0 {
		t.Fatalf("run failed: %+v", rr)
	}
	if rr.TraceID != 0 || len(rr.Trace) != 0 {
		t.Fatalf("trace-disabled machine produced a trace: id=%d spans=%d", rr.TraceID, len(rr.Trace))
	}
	if rr.QueuedMs < 0 {
		t.Fatalf("queuedMs fallback missing: %v", rr.QueuedMs)
	}
	tr := getTrace(t, ts.URL, "alice")
	if len(tr.Spans) != 0 {
		t.Fatalf("trace-disabled machine leaked %d spans", len(tr.Spans))
	}
}
