package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/shill"
)

// maxRunBody bounds a POST /v1/run body; beyond it the server answers
// 413 naming the limit instead of a confusing JSON truncation error.
const maxRunBody = 1 << 20

// Handler returns the server's HTTP surface:
//
//	POST /v1/run               execute a script (or argv) for a tenant
//	GET  /v1/audit/why-denied  explain a tenant's recorded denials
//	GET  /v1/trace             a tenant's span stream + slowest traces
//	GET  /healthz              liveness (503 while draining)
//	GET  /metrics              Prometheus-style text metrics
//	GET  /v1/admin/snapshot    export a tenant's machine image (admin.go)
//	POST /v1/admin/restore     seed a tenant from an exported image
//	POST /v1/admin/denials     import a migrated tenant's denial history
//	GET  /v1/admin/tenants     list live tenants and retained images
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/audit/why-denied", s.handleWhyDenied)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("POST /v1/admin/restore", s.handleAdminRestore)
	mux.HandleFunc("POST /v1/admin/denials", s.handleAdminDenials)
	mux.HandleFunc("GET /v1/admin/tenants", s.handleAdminTenants)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) writeAdmitError(w http.ResponseWriter, err error) {
	var ae *admitError
	if errors.As(err, &ae) {
		if ae.retryAfter > 0 {
			secs := int(ae.retryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, ae.status, errorResponse{Error: ae.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

// handleRun is the execution endpoint. Admission order: drain gate,
// tenant machine + quota, then a global slot (bounded queue). The
// request deadline and the client's own disconnection both feed the
// run's context, so either kills the sandboxed process tree.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)

	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, maxRunBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		// A body at the limit used to surface as a confusing
		// "400 unexpected EOF" from the truncated JSON; name the real
		// problem and the limit instead.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("request body exceeds the %d-byte (1 MiB) limit", maxRunBody)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if !validTenant(req.Tenant) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	nsel := 0
	for _, set := range []bool{req.Script != "", req.ScriptName != "", len(req.Argv) > 0} {
		if set {
			nsel++
		}
	}
	if nsel != 1 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "exactly one of script, scriptName, argv required"})
		return
	}

	// beginRequest checks the drain flag and joins the in-flight group
	// atomically (gateMu), so Drain never closes machines under a run
	// it did not wait for and inflight.Add never races inflight.Wait.
	if !s.beginRequest() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	defer s.inflight.Done()

	acquireStart := time.Now()
	t, err := s.acquireTenant(req.Tenant)
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer s.releaseTenant(t)

	// The request's trace begins the moment its machine exists: spans
	// land in the tenant machine's recorder, so /v1/trace?tenant=T
	// serves exactly this tenant's span stream. A machine built
	// WithTraceDisabled yields a nil ref and every call below no-ops.
	displayName := req.ScriptName
	if displayName == "" {
		if len(req.Argv) > 0 {
			displayName = req.Argv[0]
		} else {
			displayName = "request.ambient"
		}
	}
	tr := t.m.Tracer().NewTrace()
	reqSpan := tr.Start(0, shill.SpanRequest, displayName)
	reqSpan.SetDetail("tenant=" + req.Tenant)
	tr.Add(shill.Span{
		Parent: reqSpan.ID(), Kind: shill.SpanAcquire, Name: "acquire-machine",
		Start: acquireStart, Dur: time.Since(acquireStart),
	})

	// Script resolution happens before a slot is consumed: a 404 should
	// not cost queue capacity.
	src := req.Script
	name := "request.ambient"
	if req.ScriptName != "" {
		rsp := tr.Start(reqSpan.ID(), shill.SpanResolve, "resolve-script")
		src, err = t.m.Resolver().Load(req.ScriptName)
		rsp.End()
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		name = req.ScriptName
	}
	if len(req.Args) > 0 && len(req.Argv) == 0 {
		src = spliceArgs(src, req.Args)
	}

	// The queue span is the single source of truth for queue wait: the
	// wire's queuedMs is the span's duration (the stopwatch fallback
	// only covers trace-disabled machines).
	queueStart := time.Now()
	qspan := tr.Start(reqSpan.ID(), shill.SpanQueue, "queue-wait")
	err = s.acquireSlot(r.Context())
	queueWait := qspan.End()
	if qspan == nil {
		queueWait = time.Since(queueStart)
	}
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer func() { <-s.slots }()
	s.met.queueWait.observe(queueWait)
	queuedMs := float64(queueWait) / float64(time.Millisecond)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	ctx = shill.NewTraceContext(ctx, tr, reqSpan.ID())

	sess := t.m.NewSession()
	defer sess.Close()
	s.met.activeRuns.Add(1)
	defer s.met.activeRuns.Add(-1)

	var resp *RunResponse
	if req.Stream {
		resp = s.streamRun(ctx, w, sess, req, name, src, queuedMs)
	} else {
		resp = s.execute(ctx, sess, req, name, src, queuedMs)
	}
	total := reqSpan.End()
	s.finishTrace(req.Tenant, displayName, tr, total, resp)
	if !req.Stream {
		writeJSON(w, http.StatusOK, resp)
	}
}

// finishTrace closes out a request's observability: the per-outcome
// latency histogram, the compile histogram (fed from the run's compile
// spans), and the flight recorder's slowest-trace retention.
func (s *Server) finishTrace(tenant, script string, tr *shill.TraceRef, total time.Duration, resp *RunResponse) {
	outcome := outcomeAllow
	switch {
	case resp.Canceled:
		outcome = outcomeCancel
	case len(resp.Denials) > 0:
		outcome = outcomeDeny
	case resp.Error != "":
		outcome = outcomeError
	}
	s.met.runSeconds.with(outcome).observe(total)
	spans := tr.Spans()
	for _, sp := range spans {
		if sp.Kind != shill.SpanCompile {
			continue
		}
		cache := "miss"
		if strings.Contains(sp.Detail, "cache=hit") {
			cache = "hit"
		}
		s.met.compileSeconds.with(cache).observe(sp.Dur)
	}
	s.flight.offer(tenant, script, tr.TraceID(), total, spans)
}

// execute runs the request on an admitted session and shapes the
// response; run failures (denials, cancellations, nonzero exits) are
// results, not transport errors.
func (s *Server) execute(ctx context.Context, sess *shill.Session, req RunRequest, name, src string, queuedMs float64) *RunResponse {
	var res *shill.Result
	var err error
	if len(req.Argv) > 0 {
		res, err = sess.RunCommand(ctx, req.Argv, req.Dir)
	} else {
		res, err = sess.Run(ctx, shill.Script{Name: name, Source: src})
	}

	resp := &RunResponse{Tenant: req.Tenant, QueuedMs: queuedMs}
	if res != nil {
		resp.Result = *res
	} else {
		resp.Script = name
		resp.ExitStatus = -1
	}
	if err != nil {
		resp.Error = err.Error()
		if ctx.Err() != nil {
			resp.Canceled = true
			s.met.canceled.Add(1)
		}
		// Count a denied run only when it failed: the seq-windowed
		// Denials slice can include a concurrent neighbour's denials on
		// a shared tenant machine, so a successful run with a populated
		// window is not a denial. (Scripts may swallow the DenyReason
		// into a plain script error, so the window — not the error
		// chain — is the reliable signal on a failed run.)
		if audit.ReasonFor(err) != nil || len(resp.Denials) > 0 {
			s.met.denied.Add(1)
		}
	}
	return resp
}

// streamRun answers with NDJSON: one {"console": ...} event per
// console write, then a final {"result": ...} event. The console tee
// feeds a pump goroutine so the session's console device never blocks
// on the network.
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, sess *shill.Session, req RunRequest, name, src string, queuedMs float64) *RunResponse {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	p := newPump()
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		p.pumpTo(w, flusher)
	}()
	sess.StreamConsole(p)

	resp := s.execute(ctx, sess, req, name, src, queuedMs)

	sess.StreamConsole(nil)
	p.close()
	<-pumpDone

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(StreamEvent{Result: resp})
	if flusher != nil {
		flusher.Flush()
	}
	return resp
}

// handleWhyDenied serves the shill-audit why-denied query path over
// the wire: every retained denial of the tenant's machine, explained
// with layer, op, object, missing privileges, contract blame, and
// capability lineage. ?since=N windows the reply to denials recorded
// after that audit sequence point.
func (s *Server) handleWhyDenied(w http.ResponseWriter, r *http.Request) {
	tenantName := r.URL.Query().Get("tenant")
	if !validTenant(tenantName) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "since must be an audit sequence number"})
			return
		}
		since = v
	}
	// Imported denials (POST /v1/admin/denials — the history a previous
	// owner retained before the tenant migrated here) answer alongside,
	// or instead of, the live machine's log. Sequence numbers from the
	// two sources share one space: a restored machine's audit log
	// continues from the captured sequence point, so imports always
	// predate anything the live log holds.
	imported := s.importedDenials(tenantName, since)
	t := s.lookupTenant(tenantName)
	if t == nil && imported == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no machine for tenant %q", tenantName)})
		return
	}
	resp := WhyDeniedResponse{
		Tenant:  tenantName,
		Since:   since,
		Denials: imported,
	}
	if t != nil {
		log := t.m.AuditLog()
		resp.AuditSeq = log.Seq()
		resp.Denials = append(resp.Denials, audit.Explain(log, since)...)
	} else if n := len(imported); n > 0 {
		resp.AuditSeq = imported[n-1].Seq
	}
	if resp.Denials == nil {
		resp.Denials = []audit.Explanation{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves a tenant's request traces: the machine recorder's
// span stream after ?since=N (a span sequence point, for incremental
// polls), plus the server-wide flight recorder's slowest retained
// traces for the tenant. A span's traceId groups it with its tree;
// why-denied explanations carry the same traceId, so a denial links
// straight to the spans that surround it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tenantName := r.URL.Query().Get("tenant")
	if !validTenant(tenantName) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "since must be a span sequence number"})
			return
		}
		since = v
	}
	t := s.lookupTenant(tenantName)
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no machine for tenant %q", tenantName)})
		return
	}
	rec := t.m.Tracer()
	resp := TraceResponse{
		Tenant:  tenantName,
		Since:   since,
		Seq:     rec.Seq(),
		Spans:   rec.Since(since),
		Slowest: s.flight.snapshot(tenantName),
	}
	if resp.Spans == nil {
		resp.Spans = []shill.Span{}
	}
	if resp.Slowest == nil {
		resp.Slowest = []FlightTrace{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptimeSec"`
		Tenants    int     `json:"tenants"`
		ActiveRuns int64   `json:"activeRuns"`
	}
	h := health{
		Status:     "ok",
		UptimeSec:  time.Since(s.start).Seconds(),
		Tenants:    s.Tenants(),
		ActiveRuns: s.met.activeRuns.Load(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
