package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/audit"
	"repro/shill"
)

// Handler returns the server's HTTP surface:
//
//	POST /v1/run              execute a script (or argv) for a tenant
//	GET  /v1/audit/why-denied explain a tenant's recorded denials
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             Prometheus-style text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/audit/why-denied", s.handleWhyDenied)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) writeAdmitError(w http.ResponseWriter, err error) {
	var ae *admitError
	if errors.As(err, &ae) {
		if ae.retryAfter > 0 {
			secs := int(ae.retryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, ae.status, errorResponse{Error: ae.msg})
		return
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
}

// handleRun is the execution endpoint. Admission order: drain gate,
// tenant machine + quota, then a global slot (bounded queue). The
// request deadline and the client's own disconnection both feed the
// run's context, so either kills the sandboxed process tree.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)

	var req RunRequest
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if !validTenant(req.Tenant) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	nsel := 0
	for _, set := range []bool{req.Script != "", req.ScriptName != "", len(req.Argv) > 0} {
		if set {
			nsel++
		}
	}
	if nsel != 1 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "exactly one of script, scriptName, argv required"})
		return
	}

	// beginRequest checks the drain flag and joins the in-flight group
	// atomically (gateMu), so Drain never closes machines under a run
	// it did not wait for and inflight.Add never races inflight.Wait.
	if !s.beginRequest() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	defer s.inflight.Done()

	t, err := s.acquireTenant(req.Tenant)
	if err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer s.releaseTenant(t)

	// Script resolution happens before a slot is consumed: a 404 should
	// not cost queue capacity.
	src := req.Script
	name := "request.ambient"
	if req.ScriptName != "" {
		if src, err = t.m.Resolver().Load(req.ScriptName); err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		name = req.ScriptName
	}
	if len(req.Args) > 0 && len(req.Argv) == 0 {
		src = spliceArgs(src, req.Args)
	}

	queueStart := time.Now()
	if err := s.acquireSlot(r.Context()); err != nil {
		s.writeAdmitError(w, err)
		return
	}
	defer func() { <-s.slots }()
	queuedMs := float64(time.Since(queueStart)) / float64(time.Millisecond)

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	sess := t.m.NewSession()
	defer sess.Close()
	s.met.activeRuns.Add(1)
	defer s.met.activeRuns.Add(-1)

	if req.Stream {
		s.streamRun(ctx, w, sess, req, name, src, queuedMs)
		return
	}

	resp := s.execute(ctx, sess, req, name, src, queuedMs)
	writeJSON(w, http.StatusOK, resp)
}

// execute runs the request on an admitted session and shapes the
// response; run failures (denials, cancellations, nonzero exits) are
// results, not transport errors.
func (s *Server) execute(ctx context.Context, sess *shill.Session, req RunRequest, name, src string, queuedMs float64) *RunResponse {
	var res *shill.Result
	var err error
	if len(req.Argv) > 0 {
		res, err = sess.RunCommand(ctx, req.Argv, req.Dir)
	} else {
		res, err = sess.Run(ctx, shill.Script{Name: name, Source: src})
	}

	resp := &RunResponse{Tenant: req.Tenant, QueuedMs: queuedMs}
	if res != nil {
		resp.Result = *res
	} else {
		resp.Script = name
		resp.ExitStatus = -1
	}
	if err != nil {
		resp.Error = err.Error()
		if ctx.Err() != nil {
			resp.Canceled = true
			s.met.canceled.Add(1)
		}
		// Count a denied run only when it failed: the seq-windowed
		// Denials slice can include a concurrent neighbour's denials on
		// a shared tenant machine, so a successful run with a populated
		// window is not a denial. (Scripts may swallow the DenyReason
		// into a plain script error, so the window — not the error
		// chain — is the reliable signal on a failed run.)
		if audit.ReasonFor(err) != nil || len(resp.Denials) > 0 {
			s.met.denied.Add(1)
		}
	}
	return resp
}

// streamRun answers with NDJSON: one {"console": ...} event per
// console write, then a final {"result": ...} event. The console tee
// feeds a pump goroutine so the session's console device never blocks
// on the network.
func (s *Server) streamRun(ctx context.Context, w http.ResponseWriter, sess *shill.Session, req RunRequest, name, src string, queuedMs float64) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	p := newPump()
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		p.pumpTo(w, flusher)
	}()
	sess.StreamConsole(p)

	resp := s.execute(ctx, sess, req, name, src, queuedMs)

	sess.StreamConsole(nil)
	p.close()
	<-pumpDone

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(StreamEvent{Result: resp})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleWhyDenied serves the shill-audit why-denied query path over
// the wire: every retained denial of the tenant's machine, explained
// with layer, op, object, missing privileges, contract blame, and
// capability lineage. ?since=N windows the reply to denials recorded
// after that audit sequence point.
func (s *Server) handleWhyDenied(w http.ResponseWriter, r *http.Request) {
	tenantName := r.URL.Query().Get("tenant")
	if !validTenant(tenantName) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "since must be an audit sequence number"})
			return
		}
		since = v
	}
	t := s.lookupTenant(tenantName)
	if t == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no machine for tenant %q", tenantName)})
		return
	}
	log := t.m.AuditLog()
	resp := WhyDeniedResponse{
		Tenant:   tenantName,
		Since:    since,
		AuditSeq: log.Seq(),
		Denials:  audit.Explain(log, since),
	}
	if resp.Denials == nil {
		resp.Denials = []audit.Explanation{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status     string  `json:"status"`
		UptimeSec  float64 `json:"uptimeSec"`
		Tenants    int     `json:"tenants"`
		ActiveRuns int64   `json:"activeRuns"`
	}
	h := health{
		Status:     "ok",
		UptimeSec:  time.Since(s.start).Seconds(),
		Tenants:    s.Tenants(),
		ActiveRuns: s.met.activeRuns.Load(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
