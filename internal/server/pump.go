package server

import (
	"encoding/json"
	"net/http"
	"sync"
)

// pumpMaxBuffered bounds how many console bytes a stream may queue for
// a client that reads slower than the script writes. The console device
// calls Write under its own lock and must never block, so without a
// bound a stalled NDJSON client would accumulate the run's entire
// console output in server memory for the life of the run. When the
// queue overflows, the oldest buffered bytes are dropped and the client
// is told how many via a {"truncated": N} marker event — a slow reader
// loses history, never liveness, and the server's memory stays O(cap).
const pumpMaxBuffered = 256 << 10

// pump decouples the session console's tee from the network: the
// console device calls Write under its own lock (and must never block
// on a slow client), so writes land in a bounded in-memory queue that a
// dedicated goroutine drains to the HTTP response as NDJSON console
// events.
type pump struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks [][]byte
	// buffered is the byte total across chunks; bounded by max.
	buffered int
	max      int
	// dropped counts bytes discarded since the last truncation marker
	// was emitted; pumpTo reports it to the client and resets it.
	dropped int64
	closed  bool
}

func newPump() *pump {
	p := &pump{max: pumpMaxBuffered}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Write implements io.Writer for Session.StreamConsole; it copies the
// chunk and returns immediately. If the queue would exceed the byte
// cap, queued chunks are coalesced and the oldest bytes dropped until
// the new chunk fits (drop-oldest: the client keeps the freshest
// output, plus a marker saying how much it missed).
func (p *pump) Write(b []byte) (int, error) {
	n := len(b)
	c := make([]byte, n)
	copy(c, b)
	p.mu.Lock()
	if n > p.max {
		// A single chunk larger than the whole budget: keep its tail.
		p.dropped += int64(n - p.max)
		c = c[n-p.max:]
	}
	p.chunks = append(p.chunks, c)
	p.buffered += len(c)
	if p.buffered > p.max {
		p.shedLocked()
	}
	p.mu.Unlock()
	p.cond.Signal()
	return n, nil
}

// shedLocked brings the queue back under the byte cap: it coalesces the
// queued chunks into one buffer (so overflow cost stays O(cap), not
// O(chunks)) and drops the oldest bytes.
func (p *pump) shedLocked() {
	flat := make([]byte, 0, p.buffered)
	for _, c := range p.chunks {
		flat = append(flat, c...)
	}
	over := len(flat) - p.max
	p.dropped += int64(over)
	flat = flat[over:]
	p.chunks = append(p.chunks[:0], flat)
	p.buffered = len(flat)
}

// close marks the stream finished; pumpTo drains what remains and
// returns.
func (p *pump) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Signal()
}

// pumpTo writes queued chunks as {"console": ...} NDJSON events until
// close, flushing after every batch so clients see output live. If
// bytes were shed while the client lagged, a {"truncated": N} marker
// event precedes the next console event so the gap is visible.
func (p *pump) pumpTo(w http.ResponseWriter, flusher http.Flusher) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		p.mu.Lock()
		for len(p.chunks) == 0 && !p.closed {
			p.cond.Wait()
		}
		batch := p.chunks
		p.chunks = nil
		p.buffered = 0
		dropped := p.dropped
		p.dropped = 0
		done := p.closed && len(batch) == 0
		p.mu.Unlock()
		if done {
			return
		}
		if dropped > 0 {
			enc.Encode(StreamEvent{Truncated: dropped})
		}
		for _, c := range batch {
			enc.Encode(StreamEvent{Console: string(c)})
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
