package server

import (
	"encoding/json"
	"net/http"
	"sync"
)

// pump decouples the session console's tee from the network: the
// console device calls Write under its own lock (and must never block
// on a slow client), so writes land in an in-memory queue that a
// dedicated goroutine drains to the HTTP response as NDJSON console
// events.
type pump struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks [][]byte
	closed bool
}

func newPump() *pump {
	p := &pump{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Write implements io.Writer for Session.StreamConsole; it copies the
// chunk and returns immediately.
func (p *pump) Write(b []byte) (int, error) {
	c := make([]byte, len(b))
	copy(c, b)
	p.mu.Lock()
	p.chunks = append(p.chunks, c)
	p.mu.Unlock()
	p.cond.Signal()
	return len(b), nil
}

// close marks the stream finished; pumpTo drains what remains and
// returns.
func (p *pump) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Signal()
}

// pumpTo writes queued chunks as {"console": ...} NDJSON events until
// close, flushing after every batch so clients see output live.
func (p *pump) pumpTo(w http.ResponseWriter, flusher http.Flusher) {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		p.mu.Lock()
		for len(p.chunks) == 0 && !p.closed {
			p.cond.Wait()
		}
		batch := p.chunks
		p.chunks = nil
		done := p.closed && len(batch) == 0
		p.mu.Unlock()
		if done {
			return
		}
		for _, c := range batch {
			enc.Encode(StreamEvent{Console: string(c)})
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
