package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Fixed-bucket latency histograms for /metrics: the server-side view of
// request latency that shill-load compares against its client-side
// percentiles. Observation is lock-free (one atomic add per bucket
// hit); exposition renders the Prometheus text format with cumulative,
// le-ordered buckets.

// latencyBuckets are the upper bounds (seconds) shared by every latency
// family. 0.5ms..10s covers everything from a cache-hit no-op script to
// a run that rode its deadline.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is one fixed-bucket series. The zero value is unusable;
// construct with newHistogram.
type histogram struct {
	bounds []float64      // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sumNs  atomic.Int64
	n      atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// snapshot returns the cumulative bucket counts (per le bound, then
// +Inf), the sum in seconds, and the count.
func (h *histogram) snapshot() (cum []int64, sum float64, n int64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, float64(h.sumNs.Load()) / 1e9, h.n.Load()
}

// quantile estimates the q-quantile (0 < q <= 1) from the buckets by
// linear interpolation, the same way Prometheus histogram_quantile
// does. Returns 0 when the histogram is empty.
func (h *histogram) quantile(q float64) float64 {
	cum, _, n := h.snapshot()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	for i, c := range cum {
		if float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			prev := int64(0)
			if i > 0 {
				prev = cum[i-1]
			}
			inBucket := c - prev
			if inBucket == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(prev))/float64(inBucket)
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// histVec is a histogram family with one fixed label; the series are
// created up-front so observation never allocates or locks.
type histVec struct {
	label  string
	order  []string // exposition order
	series map[string]*histogram
}

func newHistVec(label string, values ...string) *histVec {
	v := &histVec{label: label, order: values, series: make(map[string]*histogram, len(values))}
	for _, val := range values {
		v.series[val] = newHistogram(latencyBuckets)
	}
	return v
}

// with returns the labelled series; unknown values fall back to the
// first series rather than panicking on a hot path.
func (v *histVec) with(value string) *histogram {
	if h := v.series[value]; h != nil {
		return h
	}
	return v.series[v.order[0]]
}

// exposeHistogram writes one series in text exposition format. labels
// is the rendered label set without braces ("" for none); le is
// appended as the last label of each bucket line.
func exposeHistogram(w io.Writer, name, labels string, h *histogram) {
	cum, sum, n := h.snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum[len(cum)-1])
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, n)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, n)
	}
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest float form: "0.005", "1", "2.5").
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// exposeHistVec writes a whole family: one HELP/TYPE header, then every
// labelled series in construction order.
func exposeHistVec(w io.Writer, name, help string, v *histVec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, val := range v.order {
		labels := fmt.Sprintf("%s=%q", v.label, val)
		exposeHistogram(w, name, labels, v.series[val])
	}
}
