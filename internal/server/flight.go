package server

import (
	"sort"
	"sync"
	"time"

	"repro/shill"
)

// flightRecorder keeps the K slowest complete request traces the server
// has seen — the post-hoc answer to "what was that latency spike?".
// Offers are cheap when the candidate is faster than the current
// fastest retained trace (one mutex'd comparison, no copy).
type flightRecorder struct {
	mu      sync.Mutex
	k       int
	entries []FlightTrace // sorted slowest-first
}

// FlightTrace is one retained slow trace, JSON-shaped for /v1/trace.
type FlightTrace struct {
	Tenant  string       `json:"tenant"`
	Script  string       `json:"script"`
	TraceID uint64       `json:"traceId"`
	DurMs   float64      `json:"durMs"`
	Spans   []shill.Span `json:"spans"`
}

func newFlightRecorder(k int) *flightRecorder {
	if k <= 0 {
		k = 16
	}
	return &flightRecorder{k: k}
}

// offer considers a completed trace for retention.
func (f *flightRecorder) offer(tenant, script string, traceID uint64, dur time.Duration, spans []shill.Span) {
	if traceID == 0 || len(spans) == 0 {
		return
	}
	e := FlightTrace{
		Tenant: tenant, Script: script, TraceID: traceID,
		DurMs: float64(dur) / float64(time.Millisecond), Spans: spans,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.entries) >= f.k && e.DurMs <= f.entries[len(f.entries)-1].DurMs {
		return
	}
	f.entries = append(f.entries, e)
	sort.Slice(f.entries, func(i, j int) bool { return f.entries[i].DurMs > f.entries[j].DurMs })
	if len(f.entries) > f.k {
		f.entries = f.entries[:f.k]
	}
}

// snapshot returns the retained traces (slowest first), filtered by
// tenant when tenant is non-empty.
func (f *flightRecorder) snapshot(tenant string) []FlightTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightTrace, 0, len(f.entries))
	for _, e := range f.entries {
		if tenant == "" || e.Tenant == tenant {
			out = append(out, e)
		}
	}
	return out
}
