package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/shill"
)

// Eviction/readmission: an evicted tenant's machine state (the files
// its runs wrote) must survive in a retained snapshot and come back on
// the tenant's next request, served from a warm restore.

func writeNoteScript(k int) string {
	return fmt.Sprintf(`#lang shill/ambient

home = open_dir("/home/user");
f = create_file(home, "r%d.txt");
append(f, "done-%d");
`, k, k)
}

func readNoteScript(k int) string {
	return fmt.Sprintf(`#lang shill/ambient

append(stdout, read(open_file("/home/user/r%d.txt")));
`, k)
}

// postRunRetry posts a run, retrying 429 responses (registry full under
// deliberate churn) until the deadline.
func postRunRetry(t *testing.T, url string, req RunRequest) *RunResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, rr := postRun(t, url, req)
		if resp.StatusCode == http.StatusOK {
			return rr
		}
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("tenant %s: status %d", req.Tenant, resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEvictionKeepsTenantState(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxMachines = 2 })

	// alice writes a file, then goes idle.
	if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: "alice", Script: writeNoteScript(0)}); rr.ExitStatus != 0 {
		t.Fatalf("alice write failed: %+v", rr)
	}
	aliceMachine := s.lookupTenant("alice").m

	// Two fresh tenants force alice's eviction.
	for _, tenant := range []string{"bob", "carol"} {
		if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: allowAmbient}); rr.ExitStatus != 0 {
			t.Fatalf("%s run failed: %+v", tenant, rr)
		}
	}
	if s.lookupTenant("alice") != nil {
		t.Fatal("alice was not evicted")
	}
	if !aliceMachine.Closed() {
		t.Fatal("evicted machine was not closed")
	}
	if s.RetainedImages() == 0 {
		t.Fatal("eviction retained no snapshot")
	}

	// alice returns: her state must still be there, from a warm restore.
	rr := postRunRetry(t, ts.URL, RunRequest{Tenant: "alice", Script: readNoteScript(0)})
	if rr.ExitStatus != 0 || rr.Console != "done-0" {
		t.Fatalf("alice lost her file across eviction: %+v", rr)
	}
	if warm := s.met.restoresWarm.Load(); warm != 1 {
		t.Fatalf("warm restores = %d, want 1", warm)
	}

	// The restore kinds are visible on the wire.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	text := string(body[:n])
	if !strings.Contains(text, `shilld_restores_total{kind="warm"} 1`) {
		t.Fatalf("/metrics missing warm restore count:\n%s", text)
	}
	if !strings.Contains(text, `shilld_restores_total{kind="cold"}`) {
		t.Fatalf("/metrics missing cold restore count:\n%s", text)
	}
}

// TestChurnUnderLoadNoLostTenantFiles is the regression test for
// snapshot-on-evict: twice as many tenants as machine slots, hammered
// concurrently so tenants are evicted and readmitted continuously, and
// at the end every file every tenant ever wrote must still exist on
// that tenant's machine.
func TestChurnUnderLoadNoLostTenantFiles(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxMachines = 2 })

	const rounds = 6
	tenants := []string{"t0", "t1", "t2", "t3"}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker alternates between two tenants, so every
			// switch on a 2-slot registry evicts somebody.
			mine := tenants[2*w : 2*w+2]
			for k := 0; k < rounds; k++ {
				for _, tenant := range mine {
					rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: writeNoteScript(k)})
					if rr.ExitStatus != 0 {
						t.Errorf("tenant %s round %d failed: %+v", tenant, k, rr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every tenant must still hold every file it ever wrote.
	for _, tenant := range tenants {
		for k := 0; k < rounds; k++ {
			rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: readNoteScript(k)})
			if rr.ExitStatus != 0 || rr.Console != fmt.Sprintf("done-%d", k) {
				t.Fatalf("tenant %s lost r%d.txt across churn: %+v", tenant, k, rr)
			}
		}
	}
	if warm := s.met.restoresWarm.Load(); warm == 0 {
		t.Fatal("churn produced no warm restores — the test exercised nothing")
	}
	if evictions := s.met.evictions.Load(); evictions == 0 {
		t.Fatal("churn produced no evictions — the test exercised nothing")
	}
	t.Logf("churn: %d evictions, %d warm restores, %d cold boots, %d retained images",
		s.met.evictions.Load(), s.met.restoresWarm.Load(), s.met.restoresCold.Load(), s.RetainedImages())
}

// TestGoldenImageBootsTenants proves Config.GoldenImage is used for
// brand-new tenants: every boot is a restore (counted cold), the staged
// workload comes from the image, and tenant writes stay isolated.
func TestGoldenImageBootsTenants(t *testing.T) {
	golden, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadDemo))
	if err != nil {
		t.Fatal(err)
	}
	img, err := golden.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	golden.Close()

	s := New(Config{
		GoldenImage: img,
		MachineOptions: func(string) []shill.Option {
			return []shill.Option{shill.WithWorkload(shill.WorkloadDemo)}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	for _, tenant := range []string{"alice", "bob"} {
		rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: `#lang shill/ambient

append(stdout, read(open_file("/home/user/Documents/dog.jpg")));
`})
		if rr.ExitStatus != 0 || rr.Console != "JFIFdog" {
			t.Fatalf("tenant %s did not boot from the golden image: %+v", tenant, rr)
		}
	}
	if cold := s.met.restoresCold.Load(); cold != 2 {
		t.Fatalf("cold restores = %d, want 2 (one per tenant, both from the golden image)", cold)
	}
	// Both tenants share the golden image's flattened base: the second
	// boot must have hit the image cache.
	stats := s.MachineStats()
	hits := uint64(0)
	for _, st := range stats {
		hits += st.ImageCacheHits
	}
	if hits == 0 {
		t.Fatal("no tenant machine hit the flattened-image cache")
	}
}
