package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/priv"
	"repro/shill"
)

// Test scripts. The ambient dialect is straight-line, so loops live in
// cap modules served by the tenant machines' resolver.

const spinCap = `#lang shill/cap

provide spin : {} -> void;

spin = fun() {
  for a in range(100000) {
    for b in range(100000) {
      b;
    }
  }
};
`

const spinAmbient = `#lang shill/ambient
require "spin.cap";
spin();
`

const allowAmbient = "#lang shill/ambient\n\nappend(stdout, \"ok\\n\");\n"

// echoArgsCap prints each element of its list argument.
const echoArgsCap = `#lang shill/cap

provide echo_args : {out : file(+write, +append), xs : listof is_string} -> void;

echo_args = fun(out, xs) {
  for x in xs {
    append(out, x + "\n");
  }
};
`

const echoArgsAmbient = `#lang shill/ambient
require "echo.cap";
echo_args(stdout, args);
`

// testConfig builds a small server whose tenant machines can resolve
// the test scripts.
func testConfig(mut func(*Config)) Config {
	cfg := Config{
		MachineOptions: func(string) []shill.Option {
			return []shill.Option{
				shill.WithWorkload(shill.WorkloadDemo),
				shill.WithScriptResolver(shill.MapResolver{
					"spin.cap":     spinCap,
					"spin.ambient": spinAmbient,
					"echo.cap":     echoArgsCap,
				}),
			}
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testConfig(mut))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, url string, req RunRequest) (*http.Response, *RunResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("bad run response %s: %v", data, err)
	}
	return resp, &rr
}

func TestRunInlineScript(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", Script: allowAmbient})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rr.ExitStatus != 0 || rr.Console != "ok\n" || rr.Error != "" {
		t.Fatalf("run response = %+v", rr)
	}
}

func TestRunScriptNameWithArgs(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, rr := postRun(t, ts.URL, RunRequest{
		Tenant: "alice", Script: echoArgsAmbient, Args: []string{"one", `two "quoted"`, "tab\there"},
	})
	want := "one\ntwo \"quoted\"\ntab\there\n"
	if rr == nil || rr.Console != want {
		t.Fatalf("args did not round-trip through the splice: %+v", rr)
	}
}

func TestRunDeniedScriptCarriesProvenance(t *testing.T) {
	// The heart of the service: a denied run answers 200 with the full
	// structured provenance, explainable without server access.
	_, ts := newTestServer(t, nil)
	resp, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "why_denied.ambient"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rr.Error == "" || rr.ExitStatus == 0 {
		t.Fatalf("denied run did not fail: %+v", rr)
	}
	if len(rr.Denials) == 0 {
		t.Fatal("denied run carries no denials")
	}
	d := rr.Denials[0]
	if d.Layer != audit.LayerCapability || !d.Missing.Has(priv.RWrite) || len(d.Blame) == 0 {
		t.Fatalf("denial lost provenance over the wire: %+v", d)
	}
}

func TestRunUnknownScript404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "no_such.ambient"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestRunBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, req := range []RunRequest{
		{Tenant: "", Script: allowAmbient},
		{Tenant: "no spaces", Script: allowAmbient},
		{Tenant: "alice"},
		{Tenant: "alice", Script: allowAmbient, ScriptName: "x"},
	} {
		resp, _ := postRun(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status = %d, want 400", req, resp.StatusCode)
		}
	}
}

func TestDeadlineCancelsRunAndKillsTree(t *testing.T) {
	// A request deadline is a real bound: the spinning script stops, the
	// response reports cancellation, and the tenant machine is left with
	// no extra processes.
	s, ts := newTestServer(t, nil)
	start := time.Now()
	resp, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "spin.ambient", DeadlineMs: 150})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to cancel", elapsed)
	}
	if !rr.Canceled || rr.Error == "" {
		t.Fatalf("cancelled run response = %+v", rr)
	}
	tn := s.lookupTenant("alice")
	if tn == nil {
		t.Fatal("tenant machine missing")
	}
	st := tn.m.Stats()
	if st.ActiveSessions != 0 {
		t.Fatalf("cancelled run left %d active sessions", st.ActiveSessions)
	}
	// The pooled session keeps its own process; nothing beyond that.
	if st.Procs > st.Sessions+baseProcs(t) {
		t.Fatalf("cancelled run leaked processes: %+v", st)
	}
}

// baseProcs measures how many processes a fresh demo machine holds.
func baseProcs(t *testing.T) int {
	t.Helper()
	m, err := shill.NewMachine(shill.WithWorkload(shill.WorkloadDemo))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	return m.Stats().Procs
}

func TestClientDisconnectKillsRun(t *testing.T) {
	// The cancelled HTTP request kills the sandboxed process tree: the
	// acceptance criterion's "cancelled requests leave zero leaks".
	s, ts := newTestServer(t, nil)

	// Warm the tenant machine so the baseline is comparable.
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", Script: allowAmbient}); rr == nil || rr.ExitStatus != 0 {
		t.Fatal("warmup failed")
	}
	tn := s.lookupTenant("alice")
	before := tn.m.Stats()
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(RunRequest{Tenant: "alice", ScriptName: "spin.ambient", DeadlineMs: 30_000})
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the run start spinning
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("request was not cancelled")
	}

	// The server notices, kills the run, and returns the session.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := tn.m.Stats()
		if st.ActiveSessions == 0 && st.Procs <= before.Procs+(st.Sessions-before.Sessions) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnected run not torn down: before %+v, now %+v", before, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	settleGoroutines(t, goroutinesBefore)
}

func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueueBackpressure429(t *testing.T) {
	// One slot, no queue: a second concurrent run answers 429 with
	// Retry-After instead of waiting.
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
		c.TenantConcurrent = 16
	})

	release := make(chan struct{})
	var wg sync.WaitGroup
	// Fill the slot and the queue with spinning runs.
	got429 := make(chan *http.Response, 8)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			resp, _ := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "spin.ambient", DeadlineMs: 1500})
			if resp.StatusCode == http.StatusTooManyRequests {
				got429 <- resp
			}
		}()
	}
	close(release)
	wg.Wait()
	close(got429)
	n := 0
	for resp := range got429 {
		n++
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	if n == 0 {
		t.Fatal("no request was rejected: queue is unbounded")
	}
}

func TestTenantQuota429(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.TenantConcurrent = 1
		c.MaxConcurrent = 8
		c.MaxQueue = 8
	})
	release := make(chan struct{})
	var wg sync.WaitGroup
	statuses := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-release
			resp, _ := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "spin.ambient", DeadlineMs: 1200})
			statuses <- resp.StatusCode
		}()
	}
	close(release)
	wg.Wait()
	close(statuses)
	var ok, rejected int
	for st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		}
	}
	if ok != 1 || rejected != 1 {
		t.Fatalf("quota=1 with 2 concurrent runs: %d ok, %d rejected", ok, rejected)
	}
}

func TestLRUEvictionClosesIdleMachine(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxMachines = 2 })
	for _, tenant := range []string{"t1", "t2"} {
		if _, rr := postRun(t, ts.URL, RunRequest{Tenant: tenant, Script: allowAmbient}); rr == nil || rr.ExitStatus != 0 {
			t.Fatalf("tenant %s run failed", tenant)
		}
	}
	t1 := s.lookupTenant("t1")
	// Touch t1 so t2 becomes the LRU victim.
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "t1", Script: allowAmbient}); rr == nil {
		t.Fatal("t1 touch failed")
	}
	t2 := s.lookupTenant("t2")
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "t3", Script: allowAmbient}); rr == nil || rr.ExitStatus != 0 {
		t.Fatal("t3 run failed")
	}
	if s.lookupTenant("t2") != nil {
		t.Fatal("LRU tenant t2 not evicted")
	}
	if !t2.m.Closed() {
		t.Fatal("evicted machine was not closed")
	}
	if s.lookupTenant("t1") != t1 || t1.m.Closed() {
		t.Fatal("recently-used tenant t1 was evicted")
	}
	if got := s.Tenants(); got != 2 {
		t.Fatalf("registry holds %d tenants, want 2", got)
	}
}

func TestWhyDeniedOverTheWire(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "why_denied.ambient"}); rr == nil {
		t.Fatal("run failed")
	}
	resp, err := http.Get(ts.URL + "/v1/audit/why-denied?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var wd WhyDeniedResponse
	if err := json.NewDecoder(resp.Body).Decode(&wd); err != nil {
		t.Fatal(err)
	}
	if len(wd.Denials) == 0 {
		t.Fatal("no denials explained")
	}
	var found bool
	for _, d := range wd.Denials {
		if d.Layer == audit.LayerCapability && d.Missing.Has(priv.RWrite) && d.Lineage != "" && d.Detail != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fully-explained capability denial in %+v", wd.Denials)
	}

	// since=now windows future queries to nothing.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/audit/why-denied?tenant=alice&since=%d", ts.URL, wd.AuditSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var wd2 WhyDeniedResponse
	if err := json.NewDecoder(resp2.Body).Decode(&wd2); err != nil {
		t.Fatal(err)
	}
	if len(wd2.Denials) != 0 {
		t.Fatalf("since-window leaked %d old denials", len(wd2.Denials))
	}

	// Unknown tenants are 404, not new machines.
	resp3, err := http.Get(ts.URL + "/v1/audit/why-denied?tenant=nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", resp3.StatusCode)
	}
}

func TestStreamingConsoleArrivesBeforeCompletion(t *testing.T) {
	// A streamed run delivers console output while the script is still
	// running: the early chunk must arrive well before the deadline ends
	// the blocked script.
	_, ts := newTestServer(t, func(c *Config) {
		c.MachineOptions = func(string) []shill.Option {
			return []shill.Option{shill.WithWorkload(shill.WorkloadDemo)}
		}
	})
	const early = `#lang shill/ambient
require shill/sockets;

append(stdout, "early\n");
f = socket_factory("ip");
l = socket_listen(f, "9996");
c = socket_accept(l);
`
	body, _ := json.Marshal(RunRequest{Tenant: "alice", Script: early, DeadlineMs: 3000, Stream: true})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var first StreamEvent
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	firstAt := time.Since(start)
	if first.Console != "early\n" {
		t.Fatalf("first stream event = %+v, want the early console chunk", first)
	}
	if firstAt > 1500*time.Millisecond {
		t.Fatalf("first chunk arrived after %v — not streamed before completion", firstAt)
	}
	var last StreamEvent
	for {
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream ended without a result event: %v", err)
		}
		if ev.Result != nil {
			last = ev
			break
		}
	}
	if !last.Result.Canceled {
		t.Fatalf("blocked script's result not canceled: %+v", last.Result)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if _, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "why_denied.ambient"}); rr == nil {
		t.Fatal("run failed")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"shilld_requests_total 1",
		"shilld_runs_denied_total 1",
		"shilld_active_runs 0",
		"shilld_queue_depth 0",
		`shilld_machine_sessions{tenant="alice"}`,
		`shilld_machine_live_sockets{tenant="alice"}`,
		`shilld_machine_audit_seq{tenant="alice"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	s.StartDrain()
	dresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", dresp.StatusCode)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// An in-flight run that takes a moment: spin with a 600ms deadline.
	started := make(chan struct{})
	result := make(chan *RunResponse, 1)
	go func() {
		close(started)
		_, rr := postRun(t, ts.URL, RunRequest{Tenant: "alice", ScriptName: "spin.ambient", DeadlineMs: 600})
		result <- rr
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let it reach the interpreter

	s.StartDrain()
	// New work is refused while the old run finishes.
	resp, _ := postRun(t, ts.URL, RunRequest{Tenant: "bob", Script: allowAmbient})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain = %d, want 503", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain did not finish in-flight runs: %v", err)
	}
	rr := <-result
	if rr == nil || !rr.Canceled {
		t.Fatalf("in-flight run's response lost by drain: %+v", rr)
	}
	if !s.MachinesClosed() {
		t.Fatal("drain left machines open")
	}
}

func TestDrainUnderRequestStorm(t *testing.T) {
	// Draining while requests keep arriving: admission and the drain
	// flip are serialized (gateMu), so the in-flight group can never
	// see an Add racing its Wait, every late request gets a clean 503,
	// and the drain still terminates.
	s, ts := newTestServer(t, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, _ := postRun(t, ts.URL, RunRequest{Tenant: "storm", Script: allowAmbient})
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable &&
					resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("storm request status = %d", resp.StatusCode)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under storm: %v", err)
	}
	close(stop)
	wg.Wait()
	if !s.MachinesClosed() {
		t.Fatal("drain left machines open")
	}
}
