package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"
)

// The admin surface contract the router depends on: an evicting
// snapshot hands the tenant's whole state (and only one owner keeps
// it), a restore makes that state the next request's starting point on
// another replica, imported denials keep why-denied answering after
// the machine that recorded them is gone, and AwaitHandoff tells a
// draining daemon when the fleet has pulled everything it wanted.

func adminSnapshot(t *testing.T, url, tenant string, evict bool) (*http.Response, []byte) {
	t.Helper()
	q := url + "/v1/admin/snapshot?tenant=" + tenant
	if evict {
		q += "&evict=1"
	}
	resp, err := http.Get(q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestAdminSnapshotRestoreRoundTrip(t *testing.T) {
	_, src := newTestServer(t, nil)
	dstSrv, dst := newTestServer(t, nil)

	// State on the source: a file only alice's machine holds.
	if rr := postRunRetry(t, src.URL, RunRequest{Tenant: "alice", Script: writeNoteScript(7)}); rr.ExitStatus != 0 {
		t.Fatalf("write run: %+v", rr)
	}

	resp, img := adminSnapshot(t, src.URL, "alice", true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d: %s", resp.StatusCode, img)
	}
	if ct := resp.Header.Get("Content-Type"); ct != imageContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, imageContentType)
	}
	if resp.Header.Get("X-Shill-Image-Id") == "" {
		t.Fatal("snapshot reply has no X-Shill-Image-Id")
	}

	// The evicting export is a move, not a copy: the source no longer
	// answers for alice at all.
	if resp, _ := adminSnapshot(t, src.URL, "alice", false); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-evict snapshot status = %d, want 404", resp.StatusCode)
	}

	rresp, err := http.Post(dst.URL+"/v1/admin/restore?tenant=alice", imageContentType, bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("restore status = %d", rresp.StatusCode)
	}
	if got := dstSrv.RetainedImages(); got != 1 {
		t.Fatalf("destination retains %d images, want 1", got)
	}

	// Alice's next run on the destination sees the file she wrote on the
	// source — the migration carried the machine, not just the name.
	rr := postRunRetry(t, dst.URL, RunRequest{Tenant: "alice", Script: readNoteScript(7)})
	if rr.ExitStatus != 0 || rr.Console != "done-7" {
		t.Fatalf("restored read: exit=%d console=%q", rr.ExitStatus, rr.Console)
	}
}

func TestAdminSnapshotWithoutEvictLeavesMachineLive(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: "bob", Script: writeNoteScript(1)}); rr.ExitStatus != 0 {
		t.Fatalf("write run: %+v", rr)
	}
	resp, img := adminSnapshot(t, ts.URL, "bob", false)
	if resp.StatusCode != http.StatusOK || len(img) == 0 {
		t.Fatalf("snapshot: status %d, %d bytes", resp.StatusCode, len(img))
	}
	if s.lookupTenant("bob") == nil {
		t.Fatal("non-evicting snapshot removed the live machine")
	}
	if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: "bob", Script: readNoteScript(1)}); rr.Console != "done-1" {
		t.Fatalf("post-snapshot run: %+v", rr)
	}
}

func TestAdminSnapshotUnknownTenant404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if resp, _ := adminSnapshot(t, ts.URL, "nobody", true); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestImportedDenialsAnswerWhyDeniedWithoutMachine(t *testing.T) {
	_, src := newTestServer(t, nil)
	_, dst := newTestServer(t, nil)

	// A denial on the source, captured via its own why-denied.
	if _, rr := postRun(t, src.URL, RunRequest{Tenant: "dina", ScriptName: "why_denied.ambient"}); rr == nil {
		t.Fatal("deny run failed at transport")
	}
	resp, err := http.Get(src.URL + "/v1/audit/why-denied?tenant=dina")
	if err != nil {
		t.Fatal(err)
	}
	var wd WhyDeniedResponse
	if err := json.NewDecoder(resp.Body).Decode(&wd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(wd.Denials) == 0 {
		t.Fatal("source recorded no denials")
	}

	// Push the history to a replica that has never seen dina.
	payload, _ := json.Marshal(wd.Denials)
	presp, err := http.Post(dst.URL+"/v1/admin/denials?tenant=dina", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("denials import status = %d", presp.StatusCode)
	}

	// why-denied on the destination must answer from the import alone —
	// no machine for dina exists there, and asking must not create one.
	resp2, err := http.Get(dst.URL + "/v1/audit/why-denied?tenant=dina")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("destination why-denied status = %d, want 200", resp2.StatusCode)
	}
	var wd2 WhyDeniedResponse
	if err := json.NewDecoder(resp2.Body).Decode(&wd2); err != nil {
		t.Fatal(err)
	}
	if len(wd2.Denials) != len(wd.Denials) {
		t.Fatalf("imported %d denials, destination explains %d", len(wd.Denials), len(wd2.Denials))
	}
	if wd2.AuditSeq != wd.Denials[len(wd.Denials)-1].Seq {
		t.Fatalf("AuditSeq = %d, want last imported seq %d", wd2.AuditSeq, wd.Denials[len(wd.Denials)-1].Seq)
	}

	// The since window applies to imports too.
	r3, err := http.Get(fmt.Sprintf("%s/v1/audit/why-denied?tenant=dina&since=%d", dst.URL, wd2.AuditSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var wd3 WhyDeniedResponse
	if err := json.NewDecoder(r3.Body).Decode(&wd3); err != nil {
		t.Fatal(err)
	}
	if len(wd3.Denials) != 0 {
		t.Fatalf("since-window leaked %d imported denials", len(wd3.Denials))
	}
}

func TestAwaitHandoffDrainsAsTenantsAreExported(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for _, tenant := range []string{"a", "b"} {
		if rr := postRunRetry(t, ts.URL, RunRequest{Tenant: tenant, Script: allowAmbient}); rr.ExitStatus != 0 {
			t.Fatalf("%s: %+v", tenant, rr)
		}
	}
	s.StartDrain()

	// Nothing exported yet: the grace window expires with both pending.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if left := s.AwaitHandoff(ctx); left != 2 {
		t.Fatalf("AwaitHandoff = %d pending, want 2", left)
	}
	cancel()

	// Exporting both tenants releases the wait promptly.
	for _, tenant := range []string{"a", "b"} {
		if resp, body := adminSnapshot(t, ts.URL, tenant, true); resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot %s: status %d: %s", tenant, resp.StatusCode, body)
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if left := s.AwaitHandoff(ctx2); left != 0 {
		t.Fatalf("AwaitHandoff = %d pending after full export, want 0", left)
	}
}
