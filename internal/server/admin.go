package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/shill"
)

// The admin surface is what a fleet frontend (cmd/shill-router) uses to
// move a tenant between replicas without losing state: it exports a
// tenant's machine as the internal/image wire format, seeds a tenant
// from such an export on the new owner, and carries the tenant's denial
// history across so /v1/audit/why-denied keeps resolving pre-migration
// denials after the move. In a real deployment this surface would be
// bound to an operator-only listener; here it shares the mux, and the
// router is its only intended client.

// maxRestoreBody bounds a POST /v1/admin/restore image upload.
const maxRestoreBody = 64 << 20

// imageContentType is the media type of an exported machine image (the
// image.Serialize wire format).
const imageContentType = "application/x-shill-image"

// handleAdminSnapshot serves GET /v1/admin/snapshot?tenant=T[&evict=1]:
// the tenant's machine, quiesced and captured as the image.Serialize
// wire format (falling back to the retained eviction snapshot when the
// tenant has no live machine). With evict=1 the tenant's machine and
// retained image are removed after the export — the caller now owns the
// tenant's state, and a later migration back cannot resurrect a stale
// copy. During a drain, exports are additionally recorded so
// AwaitHandoff can tell when the router has pulled every tenant.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if !validTenant(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	evict := r.URL.Query().Get("evict") == "1"

	img, err := s.exportTenant(r.Context(), name, evict)
	if err != nil {
		var ae *admitError
		if errors.As(err, &ae) {
			writeJSON(w, ae.status, errorResponse{Error: ae.msg})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if img == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no machine or retained image for tenant %q", name)})
		return
	}
	s.markHandoff(name)
	data := img.Serialize()
	w.Header().Set("Content-Type", imageContentType)
	w.Header().Set("X-Shill-Image-Id", img.ID())
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}

// exportTenant captures tenant state for migration: a fresh snapshot of
// the live machine when there is one, else the retained eviction image.
// Evicting removes the registry entry (waiting briefly for admitted
// runs to finish so no post-snapshot mutation is lost) and forgets the
// retained image; nil with nil error means the tenant has no state.
func (s *Server) exportTenant(ctx context.Context, name string, evict bool) (*shill.Image, error) {
	if !evict {
		if t := s.lookupTenant(name); t != nil {
			return t.m.Snapshot()
		}
		s.mu.Lock()
		img := s.images[name]
		s.mu.Unlock()
		return img, nil
	}

	// Evicting export: take the entry out of the registry first so no
	// new run can be admitted onto a machine whose state has already
	// left the building. Admitted runs (active > 0) are waited out — the
	// router gates the tenant's requests during a migration, so the
	// count only drains.
	deadline := time.Now().Add(10 * time.Second)
	var t *tenant
	for {
		s.mu.Lock()
		t = s.tenants[name]
		if t == nil || t.active == 0 {
			if t != nil {
				delete(s.tenants, name)
				s.lru.Remove(t.elem)
			}
			img := s.images[name]
			if img != nil {
				delete(s.images, name)
				s.imageOrder = removeString(s.imageOrder, name)
			}
			s.mu.Unlock()
			if t == nil {
				return img, nil
			}
			break
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			return nil, &admitError{status: http.StatusConflict,
				msg: fmt.Sprintf("tenant %q still has runs in flight", name)}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}

	<-t.ready
	if t.buildErr != nil || t.m == nil {
		return nil, nil
	}
	img, err := t.m.Snapshot()
	t.m.Close()
	return img, err
}

// handleAdminRestore serves POST /v1/admin/restore?tenant=T: the body
// is an exported machine image (image.Serialize bytes), stored so the
// tenant's next request boots from it warm. Any live machine the
// tenant already has here is retired first — the imported image is the
// authoritative state, and a stale local machine must not shadow it.
func (s *Server) handleAdminRestore(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if !validTenant(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRestoreBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
				Error: fmt.Sprintf("image exceeds the %d-byte limit", maxRestoreBody)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "reading image: " + err.Error()})
		return
	}
	img, err := shill.DeserializeImage(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad image: " + err.Error()})
		return
	}

	// Retire any live machine (it predates the import). The registry
	// entry is removed before closing so no run lands on a machine
	// that is going away.
	s.mu.Lock()
	t := s.tenants[name]
	if t != nil {
		delete(s.tenants, name)
		s.lru.Remove(t.elem)
	}
	s.mu.Unlock()
	if t != nil {
		<-t.ready
		if t.m != nil {
			t.m.Close()
		}
	}
	s.storeImage(name, img)
	s.met.restoresSeeded.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"tenant": name, "imageId": img.ID()})
}

// handleAdminDenials serves POST /v1/admin/denials?tenant=T: the body
// is the []audit.Explanation a previous owner's why-denied reported for
// the tenant. The explanations are retained and merged into this
// replica's /v1/audit/why-denied answers, so a migrated tenant's
// pre-migration denials still resolve here. Sequence numbers stay
// comparable across the move because a restored machine's audit log
// continues from the captured sequence point.
func (s *Server) handleAdminDenials(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if !validTenant(name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "tenant must be 1-64 chars of [A-Za-z0-9._-]"})
		return
	}
	var denials []audit.Explanation
	body := http.MaxBytesReader(w, r.Body, maxRunBody)
	if err := json.NewDecoder(body).Decode(&denials); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad denials body: " + err.Error()})
		return
	}
	s.mu.Lock()
	if s.imported == nil {
		s.imported = make(map[string][]audit.Explanation)
	}
	// Replace rather than append: the source's why-denied answer is the
	// complete retained history, and re-migration must not duplicate.
	s.imported[name] = denials
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"imported": len(denials)})
}

// importedDenials returns the tenant's imported denial history filtered
// to sequence points after since.
func (s *Server) importedDenials(name string, since uint64) []audit.Explanation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []audit.Explanation
	for _, d := range s.imported[name] {
		if d.Seq > since {
			out = append(out, d)
		}
	}
	return out
}

// AdminTenant is one row of GET /v1/admin/tenants.
type AdminTenant struct {
	Name string `json:"name"`
	// Live reports a registered machine; Retained a stored eviction
	// snapshot (both can be true right after a restore import).
	Live     bool `json:"live"`
	Retained bool `json:"retained"`
}

// handleAdminTenants lists every tenant this replica holds state for —
// live machines and retained images — so an operator (or a rebuilding
// router) can see what would be lost if the replica died.
func (s *Server) handleAdminTenants(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rows := map[string]*AdminTenant{}
	get := func(name string) *AdminTenant {
		if rows[name] == nil {
			rows[name] = &AdminTenant{Name: name}
		}
		return rows[name]
	}
	for name := range s.tenants {
		get(name).Live = true
	}
	for name := range s.images {
		get(name).Retained = true
	}
	s.mu.Unlock()
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]AdminTenant, 0, len(rows))
	for _, name := range names {
		out = append(out, *rows[name])
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

// markHandoff records that a tenant's state has been exported during a
// drain; AwaitHandoff watches these.
func (s *Server) markHandoff(name string) {
	s.mu.Lock()
	if s.handoffWant != nil {
		delete(s.handoffWant, name)
	}
	s.mu.Unlock()
}

// AwaitHandoff blocks until every tenant that existed when the drain
// started has had its state exported through /v1/admin/snapshot (the
// router pulling its tenants off this replica), or until ctx expires.
// It returns how many tenants were still waiting. Callers that drain
// without a router simply time out and proceed — handoff is an
// optimization for the fleet, not a correctness gate for one process.
func (s *Server) AwaitHandoff(ctx context.Context) int {
	for {
		s.mu.Lock()
		n := len(s.handoffWant)
		s.mu.Unlock()
		if n == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			s.mu.Lock()
			n = len(s.handoffWant)
			s.mu.Unlock()
			return n
		case <-time.After(10 * time.Millisecond):
		}
	}
}
