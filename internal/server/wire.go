package server

import (
	"strings"

	"repro/internal/audit"
	"repro/shill"
)

// RunRequest is the body of POST /v1/run. Exactly one of Script,
// ScriptName, or Argv selects what to execute.
type RunRequest struct {
	// Tenant names the isolation domain; each tenant runs on its own
	// machine (own kernel, filesystem image, network stack, audit log).
	Tenant string `json:"tenant"`
	// Script is inline ambient SHILL source.
	Script string `json:"script,omitempty"`
	// ScriptName resolves a script through the tenant machine's
	// resolver chain (the built-in case-study scripts by default).
	ScriptName string `json:"scriptName,omitempty"`
	// Args, when set, is bound as the immutable list `args` in the
	// ambient script's scope (spliced after the #lang line).
	Args []string `json:"args,omitempty"`
	// Argv runs a native executable instead of a script — the
	// "Baseline" configuration of the case studies.
	Argv []string `json:"argv,omitempty"`
	// Dir is the working directory for Argv runs.
	Dir string `json:"dir,omitempty"`
	// DeadlineMs bounds the run's wall time; 0 means the server
	// default, and values above the server maximum are clamped. The
	// deadline feeds Session.Run's context: an expired run has its
	// sandboxed process tree killed.
	DeadlineMs int `json:"deadlineMs,omitempty"`
	// Stream selects the NDJSON streaming response: console chunks as
	// they are written, then the final result.
	Stream bool `json:"stream,omitempty"`
}

// RunResponse is the body of a completed POST /v1/run (and the
// "result" event of a streamed one). It embeds shill.Result, so the
// denial provenance arrives exactly as the embedding API reports it.
type RunResponse struct {
	Tenant string `json:"tenant"`
	shill.Result
	// Error is the run's error, if any (a denial, a cancellation, a
	// contract violation), as text; Denials carries the structure.
	Error string `json:"error,omitempty"`
	// Canceled reports that the run was stopped by its deadline or by
	// the client going away.
	Canceled bool `json:"canceled,omitempty"`
	// QueuedMs is how long the run waited for a global slot.
	QueuedMs float64 `json:"queuedMs"`
}

// StreamEvent is one NDJSON line of a streamed run: a console chunk,
// a truncation marker, or the final result.
type StreamEvent struct {
	Console string `json:"console,omitempty"`
	// Truncated reports that the server dropped this many of the oldest
	// buffered console bytes because the client read slower than the
	// script wrote (the stream buffer is bounded); the next console
	// event resumes after the gap.
	Truncated int64        `json:"truncated,omitempty"`
	Result    *RunResponse `json:"result,omitempty"`
}

// WhyDeniedResponse is the body of GET /v1/audit/why-denied — the
// shill-audit query path served over the wire.
type WhyDeniedResponse struct {
	Tenant   string              `json:"tenant"`
	Since    uint64              `json:"since"`
	AuditSeq uint64              `json:"auditSeq"`
	Denials  []audit.Explanation `json:"denials"`
}

// TraceResponse is the body of GET /v1/trace: the tenant machine's
// span stream after Since (Seq is the recorder's current sequence
// point — pass it back as ?since for an incremental poll), plus the
// slowest complete traces the server's flight recorder retains for the
// tenant.
type TraceResponse struct {
	Tenant  string        `json:"tenant"`
	Since   uint64        `json:"since"`
	Seq     uint64        `json:"seq"`
	Spans   []shill.Span  `json:"spans"`
	Slowest []FlightTrace `json:"slowest"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// validTenant bounds tenant names: 1-64 chars of [A-Za-z0-9._-].
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// spliceArgs binds args as the immutable list `args` in an ambient
// script by inserting the binding right after the #lang line, using
// only the escapes the SHILL lexer understands.
func spliceArgs(src string, args []string) string {
	var b strings.Builder
	b.WriteString("args = [")
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		quoteShill(&b, a)
	}
	b.WriteString("];\n")
	binding := b.String()
	if i := strings.Index(src, "\n"); i >= 0 {
		return src[:i+1] + binding + src[i+1:]
	}
	return src + "\n" + binding
}

// quoteShill emits a double-quoted SHILL string literal (escapes: \n,
// \t, \", \\ — the set the lexer understands).
func quoteShill(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
