package server_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/loadgen"
)

// The acceptance run: 64 concurrent closed-loop clients against one
// in-process shilld, mixed allowed/denied/cancelled requests across 4
// tenant machines. Must be race-clean (CI runs ./... under -race),
// every response must have the right shape (denials carry provenance,
// cancels report cancellation), cancelled requests must leave zero
// session/process/socket leaks, and the drain must close every
// machine.
func TestServe64ConcurrentMixedLoad(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	s := server.New(server.Config{
		MaxMachines:      8,
		MaxConcurrent:    64,
		TenantConcurrent: 32,
		MaxQueue:         256,
	})
	ts := httptest.NewServer(s.Handler())

	requests := 256
	if testing.Short() {
		requests = 128
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		URL:      ts.URL,
		Clients:  64,
		Requests: requests,
		Tenants:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("load: %d req in %.2fs (%.0f req/s), %d allowed / %d denied / %d canceled / %d rejected",
		rep.Requests, rep.ElapsedSec, rep.ReqPerSec, rep.Allowed, rep.Denied, rep.Canceled, rep.Rejected)

	if rep.HTTPErrors != 0 {
		t.Fatalf("%d transport/status errors", rep.HTTPErrors)
	}
	if bad := rep.Bad(); bad != 0 {
		t.Fatalf("%d malformed responses (badAllow=%d badDeny=%d badCancel=%d)",
			bad, rep.BadAllow, rep.BadDeny, rep.BadCancel)
	}
	if rep.Allowed == 0 || rep.Denied == 0 || rep.Canceled == 0 {
		t.Fatalf("mix did not exercise all kinds: %+v", rep)
	}

	// Every machine settles back to zero active sessions and zero live
	// sockets — cancelled accepts included.
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		stats := s.MachineStats()
		for _, st := range stats {
			if st.ActiveSessions != 0 || st.LiveSockets != 0 {
				clean = false
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("machines did not settle after load: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s.MachinesClosed() {
		t.Fatal("drain left machines open")
	}
	ts.Close()

	// Zero goroutine leaks across the whole serve-and-drain cycle.
	settleDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= goroutinesBefore {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
