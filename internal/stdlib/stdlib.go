// Package stdlib holds the data tables behind SHILL's standard library
// (§3.1.4): the known-dependency map fed to populate_native_wallet and
// the privilege bundles behind the contracts script's abbreviations
// (readonly, writeable, ...). The callable standard-library modules
// themselves live in internal/lang (they need interpreter access); this
// package keeps the policy content reviewable in one place.
package stdlib

import "repro/internal/priv"

// KnownDeps maps executable names to extra file resources those
// executables depend on beyond their linked libraries. The entries
// mirror the dependencies the paper's authors discovered through
// debugging sandboxes (§4.1): OCaml tools search /usr/local/lib/ocaml,
// and ocamlyacc (run under gmake) needs a temporary directory.
var KnownDeps = map[string][]string{
	"ocamlc":    {"/usr/local/lib/ocaml"},
	"ocamlrun":  {"/usr/local/lib/ocaml"},
	"ocamlyacc": {"/usr/local/lib/ocaml"},
}

// Contract privilege bundles (§3.1.4): "a programmer can specify the
// contract readonly rather than the more verbose dir(+read-symlink,
// +contents, +lookup, +stat, +read, +path) ∨ file(+stat, +read, +path)".
var (
	// ReadOnlyDirGrant is the directory half of readonly. Lookup
	// inherits the same grant, so everything reachable is also readonly.
	ReadOnlyDirGrant = priv.GrantOf(priv.ReadOnlyDir)
	// ReadOnlyFileGrant is the file half of readonly.
	ReadOnlyFileGrant = priv.GrantOf(priv.ReadOnlyFile)
	// WriteableGrant extends readonly files with write authority.
	WriteableGrant = priv.GrantOf(priv.WriteableFile)
	// WriteOnlyGrant allows writing and appending but not reading — log
	// files in the Apache case study.
	WriteOnlyGrant = priv.GrantOf(priv.NewSet(priv.RWrite, priv.RAppend, priv.RStat, priv.RPath))
	// AppendOnlyGrant is for grade logs: append, never overwrite.
	AppendOnlyGrant = priv.GrantOf(priv.NewSet(priv.RAppend, priv.RStat, priv.RPath))
	// ExecGrant is what a binary needs to be executed in a sandbox.
	ExecGrant = priv.GrantOf(priv.ExecFile)
	// PathDirGrant is what wallet PATH directories carry: search and
	// derive executable capabilities.
	PathDirGrant = func() *priv.Grant {
		g := priv.GrantOf(priv.NewSet(priv.RLookup, priv.RContents, priv.RStat, priv.RPath, priv.RRead))
		return g.WithDerived(priv.RLookup,
			priv.GrantOf(priv.NewSet(priv.RExec, priv.RRead, priv.RStat, priv.RPath, priv.RLookup, priv.RContents)))
	}()
	// TmpGrant is the /tmp contract from the grading case study:
	// "sandboxed processes can only read, modify, or delete files or
	// directories they create" — create privileges whose modifiers give
	// full control over created objects, but no authority over existing
	// entries.
	TmpGrant = func() *priv.Grant {
		created := priv.GrantOf(priv.NewSet(
			priv.RRead, priv.RWrite, priv.RAppend, priv.RStat, priv.RPath,
			priv.RTruncate, priv.RUnlink, priv.RLookup, priv.RContents,
			priv.RCreateFile, priv.RCreateDir))
		g := priv.GrantOf(priv.NewSet(priv.RLookup, priv.RCreateFile, priv.RCreateDir, priv.RStat, priv.RPath))
		g = g.WithDerived(priv.RCreateFile, created)
		g = g.WithDerived(priv.RCreateDir, created)
		// Lookup derives nothing: existing entries stay untouchable.
		g = g.WithDerived(priv.RLookup, priv.GrantOf(priv.NewSet(priv.RStat, priv.RPath)))
		return g
	}()
)
