package stdlib

import (
	"testing"

	"repro/internal/priv"
)

// TestReadonlyMatchesPaper checks the §3.1.4 abbreviation: readonly =
// dir(+read-symlink, +contents, +lookup, +stat, +read, +path) ∨
// file(+stat, +read, +path).
func TestReadonlyMatchesPaper(t *testing.T) {
	wantDir := priv.NewSet(priv.RReadSymlink, priv.RContents, priv.RLookup,
		priv.RStat, priv.RRead, priv.RPath)
	if ReadOnlyDirGrant.Rights != wantDir {
		t.Fatalf("readonly dir = %v, want %v", ReadOnlyDirGrant.Rights, wantDir)
	}
	wantFile := priv.NewSet(priv.RStat, priv.RRead, priv.RPath)
	if ReadOnlyFileGrant.Rights != wantFile {
		t.Fatalf("readonly file = %v, want %v", ReadOnlyFileGrant.Rights, wantFile)
	}
}

func TestReadonlyConfersNoWriteAuthority(t *testing.T) {
	forbidden := priv.NewSet(priv.RWrite, priv.RAppend, priv.RCreateFile,
		priv.RCreateDir, priv.RUnlinkFile, priv.RUnlinkDir, priv.RChmod,
		priv.RChown, priv.RTruncate, priv.RExec)
	for _, g := range []*priv.Grant{ReadOnlyDirGrant, ReadOnlyFileGrant} {
		if !g.Rights.Intersect(forbidden).Empty() {
			t.Fatalf("readonly grant includes write authority: %v", g)
		}
	}
}

func TestWriteOnlyCannotRead(t *testing.T) {
	if WriteOnlyGrant.Has(priv.RRead) {
		t.Fatal("writeonly grant can read")
	}
	if !WriteOnlyGrant.Has(priv.RWrite) || !WriteOnlyGrant.Has(priv.RAppend) {
		t.Fatal("writeonly grant cannot write (needs both +write and +append under the MAC rule)")
	}
}

func TestAppendOnlyIsAppendOnly(t *testing.T) {
	if AppendOnlyGrant.Has(priv.RWrite) || AppendOnlyGrant.Has(priv.RRead) ||
		AppendOnlyGrant.Has(priv.RTruncate) {
		t.Fatalf("append-only grant too strong: %v", AppendOnlyGrant)
	}
	if !AppendOnlyGrant.Has(priv.RAppend) {
		t.Fatal("append-only grant cannot append")
	}
}

// TestTmpGrantShape verifies the grading case study's /tmp contract:
// "sandboxed processes can only read, modify, or delete files or
// directories they create" (§4.1).
func TestTmpGrantShape(t *testing.T) {
	// Existing entries: lookup derives only stat+path.
	lookupSub := TmpGrant.DerivedGrant(priv.RLookup)
	if lookupSub.Has(priv.RRead) || lookupSub.Has(priv.RWrite) || lookupSub.Has(priv.RUnlink) {
		t.Fatalf("tmp lookup modifier leaks authority over existing files: %v", lookupSub)
	}
	// Created entries: full control including deletion.
	created := TmpGrant.DerivedGrant(priv.RCreateFile)
	for _, r := range []priv.Right{priv.RRead, priv.RWrite, priv.RAppend, priv.RUnlink} {
		if !created.Has(r) {
			t.Fatalf("tmp create modifier missing %v", r)
		}
	}
	if !TmpGrant.DerivedGrant(priv.RCreateDir).Has(priv.RCreateFile) {
		t.Fatal("created directories cannot hold new files")
	}
	// The top grant itself carries no read/write on the directory.
	if TmpGrant.Has(priv.RRead) || TmpGrant.Has(priv.RContents) {
		t.Fatalf("tmp grant reads existing state: %v", TmpGrant)
	}
}

func TestPathDirGrantDerivesExecutables(t *testing.T) {
	sub := PathDirGrant.DerivedGrant(priv.RLookup)
	if !sub.Has(priv.RExec) || !sub.Has(priv.RRead) {
		t.Fatalf("PATH lookup modifier cannot run executables: %v", sub)
	}
	if sub.Has(priv.RWrite) || sub.Has(priv.RCreateFile) {
		t.Fatalf("PATH lookup modifier can modify binaries: %v", sub)
	}
}

func TestKnownDepsCoverOCamlAnecdote(t *testing.T) {
	// §4.1: "OCaml searches for libraries in this directory" — the
	// default table must carry it for every OCaml tool.
	for _, tool := range []string{"ocamlc", "ocamlrun", "ocamlyacc"} {
		found := false
		for _, dep := range KnownDeps[tool] {
			if dep == "/usr/local/lib/ocaml" {
				found = true
			}
		}
		if !found {
			t.Errorf("KnownDeps[%s] missing /usr/local/lib/ocaml", tool)
		}
	}
}
