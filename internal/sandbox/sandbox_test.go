package sandbox

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/internal/stdlib"
)

// world builds a kernel with the module installed, a couple of binaries,
// and a data tree.
func world(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	k.RegisterBinary("reader", func(p *kernel.Proc, argv []string) int {
		if len(argv) < 2 {
			return 2
		}
		fd, err := p.OpenAt(kernel.AtCWD, argv[1], kernel.ORead, 0)
		if err != nil {
			p.Write(2, []byte("reader: "+err.Error()+"\n"))
			return 1
		}
		buf := make([]byte, 4096)
		n, _ := p.Read(fd, buf)
		p.Write(1, buf[:n])
		return 0
	})
	k.RegisterBinary("writer", func(p *kernel.Proc, argv []string) int {
		fd, err := p.OpenAt(kernel.AtCWD, argv[1], kernel.OCreate|kernel.OWrite, 0o644)
		if err != nil {
			return 1
		}
		p.Write(fd, []byte("written"))
		return 0
	})
	k.RegisterBinary("dialer", func(p *kernel.Proc, argv []string) int {
		sock, err := p.Socket(netstack.DomainIP)
		if err != nil {
			return 1
		}
		if err := p.Connect(sock, "99"); err != nil {
			return 2
		}
		return 0
	})
	files := map[string]string{
		"/bin/reader":    "#!bin:reader\n",
		"/bin/writer":    "#!bin:writer\n",
		"/bin/dialer":    "#!bin:dialer\n",
		"/data/in.txt":   "payload",
		"/data/priv.txt": "secret",
	}
	for path, data := range files {
		if _, err := k.FS.WriteFile(path, []byte(data), 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.FS.MkdirAll("/out", 0o777, 0, 0); err != nil {
		t.Fatal(err)
	}
	return k, k.NewProc(0, 0)
}

func exeCap(k *kernel.Kernel, p *kernel.Proc, path string) *cap.Capability {
	return cap.NewFile(p, k.FS.MustResolve(path), stdlib.ExecGrant)
}

func TestExecConfinesToArguments(t *testing.T) {
	k, p := world(t)
	reader := exeCap(k, p, "/bin/reader")
	in := cap.NewFile(p, k.FS.MustResolve("/data/in.txt"), stdlib.ReadOnlyFileGrant)
	pf := cap.NewPipeFactory(p)
	r, w, _ := pf.CreatePipe()

	res, err := Exec(p, reader, []Arg{CapArg(in)}, Options{Stdout: w})
	w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("reader exit = %d", res.ExitCode)
	}
	data, _ := r.Read()
	if string(data) != "payload" {
		t.Fatalf("output = %q", data)
	}

	// The same binary cannot read a file it was not granted.
	r2, w2, _ := pf.CreatePipe()
	res, err = Exec(p, reader, []Arg{StrArg("/data/priv.txt")}, Options{Stdout: w2, Stderr: w2})
	w2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode == 0 {
		t.Fatal("reader read an ungranted file")
	}
	if out, _ := r2.Read(); strings.Contains(string(out), "secret") {
		t.Fatal("secret leaked")
	}
}

func TestExecRequiresExecPrivilege(t *testing.T) {
	k, p := world(t)
	noExec := cap.NewFile(p, k.FS.MustResolve("/bin/reader"), stdlib.ReadOnlyFileGrant)
	_, err := Exec(p, noExec, nil, Options{})
	var np *cap.NoPrivilegeError
	if !errors.As(err, &np) {
		t.Fatalf("exec without +exec = %v", err)
	}
}

func TestWriterHonoursCreateModifier(t *testing.T) {
	k, p := world(t)
	writer := exeCap(k, p, "/bin/writer")
	outDir := cap.NewDir(p, k.FS.MustResolve("/out"),
		priv.NewGrant(priv.RLookup, priv.RCreateFile).
			WithDerived(priv.RCreateFile, priv.NewGrant(priv.RWrite, priv.RAppend, priv.RStat, priv.RPath)))
	res, err := Exec(p, writer, []Arg{StrArg("/out/new.txt")}, Options{Extras: []*cap.Capability{outDir}})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("writer = %d, %v", res.ExitCode, err)
	}
	if got := string(k.FS.MustResolve("/out/new.txt").Bytes()); got != "written" {
		t.Fatalf("file contents = %q", got)
	}
	// Overwriting an existing, ungranted file fails even under the same
	// directory capability once created by another session.
	res, _ = Exec(p, writer, []Arg{StrArg("/data/in.txt")}, Options{Extras: []*cap.Capability{outDir}})
	if res.ExitCode == 0 {
		t.Fatal("writer overwrote an ungranted file")
	}
}

func TestSocketFactoryGate(t *testing.T) {
	k, p := world(t)
	// A listener for the dialer to reach.
	l := k.Net.NewSocket(netstack.DomainIP)
	if err := k.Net.Bind(l, "99"); err != nil {
		t.Fatal(err)
	}
	if err := k.Net.Listen(l); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := k.Net.Accept(l); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() { k.Net.Close(l) })

	dialer := exeCap(k, p, "/bin/dialer")
	// Without a socket factory, socket creation is denied.
	res, err := Exec(p, dialer, nil, Options{})
	if err != nil || res.ExitCode != 1 {
		t.Fatalf("dialer without factory = %d, %v", res.ExitCode, err)
	}
	// With one, the connection succeeds.
	sf := cap.NewSocketFactory(p, netstack.DomainIP, priv.GrantOf(priv.AllSock))
	res, err = Exec(p, dialer, nil, Options{SocketFactories: []*cap.Capability{sf}})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("dialer with factory = %d, %v", res.ExitCode, err)
	}
	// A factory without connect privilege allows creation but not dialing.
	sf2 := cap.NewSocketFactory(p, netstack.DomainIP, priv.NewGrant(priv.RSockCreate))
	res, err = Exec(p, dialer, nil, Options{SocketFactories: []*cap.Capability{sf2}})
	if err != nil || res.ExitCode != 2 {
		t.Fatalf("dialer with create-only factory = %d, %v", res.ExitCode, err)
	}
}

func TestWorkDirAndUlimits(t *testing.T) {
	k, p := world(t)
	k.RegisterBinary("pwd-writer", func(p *kernel.Proc, argv []string) int {
		fd, err := p.OpenAt(kernel.AtCWD, "here.txt", kernel.OCreate|kernel.OWrite, 0o644)
		if err != nil {
			return 1
		}
		p.Write(fd, []byte("x"))
		return 0
	})
	vn, _ := k.FS.WriteFile("/bin/pwd-writer", []byte("#!bin:pwd-writer\n"), 0o755, 0, 0)
	_ = vn
	exe := exeCap(k, p, "/bin/pwd-writer")
	outDir := cap.NewDir(p, k.FS.MustResolve("/out"), priv.FullGrant())
	res, err := Exec(p, exe, nil, Options{WorkDir: outDir})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("pwd-writer = %d, %v", res.ExitCode, err)
	}
	if _, err := k.FS.Resolve("/out/here.txt"); err != nil {
		t.Fatal("file not created in the working directory")
	}

	// Ulimit: with MaxOpenFiles 3 the writer cannot even wire stdio + file.
	lim := kernel.DefaultUlimits()
	lim.MaxOpenFiles = 0
	res, err = Exec(p, exe, nil, Options{WorkDir: outDir, Limits: &lim})
	if err != nil || res.ExitCode == 0 {
		t.Fatalf("ulimit not enforced: %d, %v", res.ExitCode, err)
	}
}

func TestProfRecordsSetupAndExec(t *testing.T) {
	k, p := world(t)
	collector := prof.New()
	reader := exeCap(k, p, "/bin/reader")
	in := cap.NewFile(p, k.FS.MustResolve("/data/in.txt"), stdlib.ReadOnlyFileGrant)
	if _, err := Exec(p, reader, []Arg{CapArg(in)}, Options{Prof: collector}); err != nil {
		t.Fatal(err)
	}
	if collector.Count(prof.SandboxSetup) != 1 || collector.Count(prof.SandboxExec) != 1 {
		t.Fatalf("prof counts = %d, %d", collector.Count(prof.SandboxSetup), collector.Count(prof.SandboxExec))
	}
	if collector.Total(prof.SandboxSetup) <= 0 {
		t.Fatal("no setup time recorded")
	}
}

func TestDebugSandboxRunsAndLogs(t *testing.T) {
	k, p := world(t)
	reader := exeCap(k, p, "/bin/reader")
	// No grant for the file at all — debug mode auto-grants.
	res, err := Exec(p, reader, []Arg{StrArg("/data/priv.txt")}, Options{Debug: true})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("debug run = %d, %v", res.ExitCode, err)
	}
	if len(res.Session.Log().AutoGrants()) == 0 {
		t.Fatal("debug session recorded no auto-grants")
	}
}

func TestAncestorLookupGrantsAreBare(t *testing.T) {
	k, p := world(t)
	reader := exeCap(k, p, "/bin/reader")
	in := cap.NewFile(p, k.FS.MustResolve("/data/in.txt"), stdlib.ReadOnlyFileGrant)
	// The session's privilege maps are scrubbed asynchronously after
	// exit, so inspect the grants through the session log instead.
	res, err := Exec(p, reader, []Arg{CapArg(in)}, Options{Logging: true})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("reader = %d, %v", res.ExitCode, err)
	}
	var dataGrant *kernel.LogEntry
	for _, e := range res.Session.Log().Entries() {
		if e.Kind == kernel.LogGrant && e.Object == "/data" {
			e := e
			dataGrant = &e
		}
	}
	if dataGrant == nil {
		t.Fatal("no ancestor grant recorded for /data")
	}
	// The ancestor grant carries lookup/stat/path and nothing else.
	if dataGrant.Rights.Has(priv.RContents) || dataGrant.Rights.Has(priv.RRead) {
		t.Fatalf("ancestor grant too broad: %v", dataGrant.Rights)
	}
	if !dataGrant.Rights.Has(priv.RLookup) {
		t.Fatalf("ancestor grant missing +lookup: %v", dataGrant.Rights)
	}
}
