package sandbox

import (
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/kernel"
	"repro/internal/mac"
	"repro/internal/priv"
	"repro/internal/stdlib"
)

// TestShillAwareExecutableAttenuates models §3.2.1's hierarchical
// sessions: "a sandboxed process inside session S1 can spawn a process
// inside a new session S2, which has fewer capabilities than S1. This
// allows SHILL-aware executables to further attenuate their privileges."
//
// The "privsep" binary is SHILL-aware: it reads a config file, then
// drops into a sub-session holding only the data file read-only before
// processing, so a bug in the processing phase cannot touch the config.
func TestShillAwareExecutableAttenuates(t *testing.T) {
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)

	k.RegisterBinary("privsep", func(p *kernel.Proc, argv []string) int {
		// Phase 1: full session privileges — read the config, and touch
		// the data file so the parent session's privileges propagate to
		// its vnode (a grant to the sub-session is checked against the
		// parent's privileges *on that object*).
		cfgFD, err := p.OpenAt(kernel.AtCWD, "/app/config", kernel.ORead, 0)
		if err != nil {
			p.Write(2, []byte("config: "+err.Error()+"\n"))
			return 1
		}
		p.Close(cfgFD)
		if _, err := p.FStatAt(kernel.AtCWD, "/app/data", true); err != nil {
			p.Write(2, []byte("stat data: "+err.Error()+"\n"))
			return 1
		}

		// Phase 2: attenuate. The new session gets only read on the data
		// file — granted from (and checked against) the parent session's
		// privileges.
		fs := p.Kernel().FS
		if _, err := p.ShillInit(kernel.SessionOptions{}); err != nil {
			return 2
		}
		// Lookup grants derive nothing (matching what the parent's own
		// ancestor grants can cover).
		bareLookup := priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, &priv.Grant{})
		grants := []struct {
			vn mac.Labeled
			g  *priv.Grant
		}{
			{fs.Root(), bareLookup},
			{fs.MustResolve("/app"), bareLookup},
			{fs.MustResolve("/app/data"), priv.NewGrant(priv.RRead)},
		}
		for _, grant := range grants {
			if err := p.ShillGrant(grant.vn, grant.g); err != nil {
				return 3
			}
		}
		if err := p.ShillEnter(); err != nil {
			return 3
		}

		// Processing phase: data is readable...
		dFD, err := p.OpenAt(kernel.AtCWD, "/app/data", kernel.ORead, 0)
		if err != nil {
			p.Write(2, []byte("data: "+err.Error()+"\n"))
			return 4
		}
		p.Close(dFD)
		// ...but the config no longer is: the attenuation held.
		if _, err := p.OpenAt(kernel.AtCWD, "/app/config", kernel.ORead, 0); err == nil {
			p.Write(2, []byte("config still readable after attenuation\n"))
			return 5
		}
		return 0
	})

	files := map[string]string{
		"/bin/privsep": "#!bin:privsep\n",
		"/app/config":  "secret=1",
		"/app/data":    "payload",
	}
	for path, data := range files {
		if _, err := k.FS.WriteFile(path, []byte(data), 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	p := k.NewProc(0, 0)
	exe := cap.NewFile(p, k.FS.MustResolve("/bin/privsep"), stdlib.ExecGrant)
	app := cap.NewDir(p, k.FS.MustResolve("/app"), priv.GrantOf(priv.ReadOnlyDir))

	pf := cap.NewPipeFactory(p)
	r, w, _ := pf.CreatePipe()
	res, err := Exec(p, exe, nil, Options{Extras: []*cap.Capability{app}, Stderr: w})
	w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		out, _ := r.Read()
		t.Fatalf("privsep exit = %d: %s", res.ExitCode, strings.TrimSpace(string(out)))
	}
}
