// Package sandbox implements SHILL's capability-based sandboxes (§2.3,
// §3.2): the exec built-in forks a process, creates a session via
// shill_init, grants the session exactly the capabilities passed to
// exec, calls shill_enter, and only then transfers control to the
// executable. The sandboxed execution is then confined by the SHILL MAC
// policy to the authority those capabilities imply.
package sandbox

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/cap"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/internal/trace"
)

// Arg is one executable argument: either a plain string or a capability.
// Capability arguments are passed to the executable as paths ("the path
// to the given file is passed to the executable as an argument", §2.3)
// and simultaneously granted to the sandbox.
type Arg struct {
	Str string
	Cap *cap.Capability
}

// StrArg wraps a plain string argument.
func StrArg(s string) Arg { return Arg{Str: s} }

// CapArg wraps a capability argument.
func CapArg(c *cap.Capability) Arg { return Arg{Cap: c} }

// Options configure a sandboxed execution, mirroring exec's optional
// arguments (§2.3).
type Options struct {
	// Stdin, Stdout, Stderr are file capabilities (files, pipe ends, or
	// devices) wired to descriptors 0-2.
	Stdin, Stdout, Stderr *cap.Capability
	// Extras are additional capabilities the executable needs (libraries,
	// configuration files, directories).
	Extras []*cap.Capability
	// SocketFactories allow the sandbox to create sockets per domain.
	SocketFactories []*cap.Capability
	// WorkDir sets the sandbox working directory (defaults to the
	// filesystem root). It is granted to the session like an extra.
	WorkDir *cap.Capability
	// Limits optionally attenuates the child's ulimits ("SHILL allows
	// calls to the exec function to specify ulimit parameters", Fig. 7).
	Limits *kernel.Ulimits
	// Debug runs the sandbox in debugging mode: missing privileges are
	// granted automatically and logged (§3.2.2 "Debugging").
	Debug bool
	// Logging records grants and denials without auto-granting.
	Logging bool
	// Prof, when non-nil, receives sandbox setup/execution timings for
	// the Figure 10 breakdown.
	Prof *prof.Collector
	// Trace, when non-nil, receives sandbox-setup and sandbox-exec spans
	// (children of TraceParent) so a request trace decomposes each exec
	// the same way Prof decomposes the whole run.
	Trace       *trace.Ref
	TraceParent uint64
}

// Result reports a finished sandboxed execution.
type Result struct {
	ExitCode int
	Session  *kernel.Session
}

// Exec runs the executable capability in a fresh capability-based
// sandbox and waits for it to finish. The session's authority is exactly
// the union of the capabilities reachable from the arguments and
// options; the runtime's own (possibly ambient) authority is never
// inherited.
func Exec(runtime *kernel.Proc, exe *cap.Capability, args []Arg, opts Options) (Result, error) {
	setupStart := time.Now()
	if exe == nil || exe.Vnode() == nil {
		return Result{}, errno.EINVAL
	}
	// Demand (not a bare grant check) so the refusal is recorded in the
	// audit log like every other capability denial — the conformance
	// oracle matches script-visible failures against audited denials.
	if err := exe.Demand("exec", priv.NewSet(priv.RExec)); err != nil {
		return Result{}, err
	}

	child, err := runtime.Fork()
	if err != nil {
		return Result{}, err
	}
	session, err := child.ShillInit(kernel.SessionOptions{Debug: opts.Debug, Logging: opts.Logging})
	if err != nil {
		child.Abandon()
		reap(runtime, child)
		return Result{}, err
	}

	fail := func(err error) (Result, error) {
		child.Abandon()
		reap(runtime, child)
		return Result{Session: session}, err
	}

	// Grant phase: everything the sandbox will hold must be granted
	// before shill_enter. Real capability grants run first; ancestor
	// lookup grants run second so the no-merge rule cannot shadow a
	// capability's own lookup modifier with the bare one.
	grants := []*cap.Capability{exe}
	argv := make([]string, 0, len(args))
	for _, a := range args {
		if a.Cap == nil {
			argv = append(argv, a.Str)
			continue
		}
		path, err := a.Cap.Path()
		if err != nil {
			return fail(fmt.Errorf("sandbox: capability argument has no usable path: %w", err))
		}
		grants = append(grants, a.Cap)
		argv = append(argv, path)
	}
	grants = append(grants, opts.Extras...)
	for _, c := range []*cap.Capability{opts.Stdin, opts.Stdout, opts.Stderr, opts.WorkDir} {
		if c != nil {
			grants = append(grants, c)
		}
	}
	for _, c := range grants {
		if err := grantCap(child, c); err != nil {
			return fail(err)
		}
	}
	for _, c := range grants {
		if c.Vnode() == nil {
			continue
		}
		if err := grantAncestorLookups(child, c); err != nil {
			return fail(err)
		}
	}
	for _, sf := range opts.SocketFactories {
		if sf == nil || sf.Kind() != cap.KindSocketFactory {
			return fail(errno.EINVAL)
		}
		if err := child.ShillGrantSocketFactory(sf.SocketDomain(), sf.Grant()); err != nil {
			return fail(err)
		}
	}

	// Stdio plumbing.
	stdin, err := stdioFD(opts.Stdin, true)
	if err != nil {
		return fail(err)
	}
	stdout, err := stdioFD(opts.Stdout, false)
	if err != nil {
		return fail(err)
	}
	stderr, err := stdioFD(opts.Stderr, false)
	if err != nil {
		return fail(err)
	}
	child.SetStdio(stdin, stdout, stderr)
	releaseStdio(stdin, stdout, stderr)

	if opts.WorkDir != nil && opts.WorkDir.Vnode() != nil {
		child.SetCWDVnode(opts.WorkDir.Vnode())
	} else {
		child.SetCWDVnode(runtime.Kernel().FS.Root())
	}
	if opts.Limits != nil {
		child.SetLimits(*opts.Limits)
	}

	if err := child.ShillEnter(); err != nil {
		return fail(err)
	}
	opts.Prof.Add(prof.SandboxSetup, time.Since(setupStart))
	opts.Trace.Add(trace.Span{
		Parent: opts.TraceParent, Kind: trace.KindSandboxSetup,
		Name: "sandbox-setup", Start: setupStart, Dur: time.Since(setupStart),
	})

	// The Enabled gate keeps the disabled configuration from paying the
	// reverse path lookup (Name) and detail formatting per spawn.
	aud := runtime.Kernel().Audit()
	var exePath string
	if aud.Enabled() {
		exePath = exe.Name() // Name needs no +path privilege, unlike Path
		aud.Emit(session.AuditShard(), audit.Event{
			Kind: audit.KindSpawn, Op: "sandbox-exec", Object: exePath,
			CapID: exe.ID(), Detail: fmt.Sprintf("%d grants", len(grants)),
		})
	}

	execStart := time.Now()
	if err := child.Exec(exe.Vnode(), argv); err != nil {
		return fail(err)
	}
	code, err := runtime.Wait(child.PID())
	if errors.Is(err, errno.EINTR) {
		// The runtime was interrupted (context cancellation) while the
		// sandboxed executable was still running: tear the child down and
		// reap it so a cancelled run leaks neither processes nor session
		// privilege-map entries, then surface the interruption.
		if killed, kerr := runtime.KillWait(child.PID()); kerr == nil {
			code = killed
		}
		err = fmt.Errorf("sandbox: execution interrupted: %w", errno.EINTR)
	}
	opts.Prof.Add(prof.SandboxExec, time.Since(execStart))
	opts.Trace.Add(trace.Span{
		Parent: opts.TraceParent, Kind: trace.KindSandboxExec,
		Name: "sandbox-exec", Detail: exePath,
		Start: execStart, Dur: time.Since(execStart),
	})
	if err != nil {
		return Result{ExitCode: code, Session: session}, err
	}
	if aud.Enabled() {
		aud.Emit(session.AuditShard(), audit.Event{
			Kind: audit.KindExit, Op: "sandbox-exit", Object: exePath,
			Detail: fmt.Sprintf("status %d", code),
		})
	}
	return Result{ExitCode: code, Session: session}, nil
}

func reap(runtime *kernel.Proc, child *kernel.Proc) {
	_, _ = runtime.Wait(child.PID())
}

// grantCap installs the capability's grant on its underlying kernel
// object for the child's (pre-enter) session. Derivation-producing
// grants keep their modifiers, so the MAC policy propagates exactly what
// the capability's contract allowed.
//
// For filesystem capabilities the runtime also grants a bare +lookup
// (with an empty derivation modifier, so nothing propagates) on every
// ancestor directory up to the root. This is the path-translation
// support behind passing capabilities to executables as path arguments
// (§2.3): the executable re-opens the path, and resolution must be able
// to walk to the labelled object — but gains no authority over anything
// else along the way.
func grantCap(child *kernel.Proc, c *cap.Capability) error {
	switch c.Kind() {
	case cap.KindFile, cap.KindDir:
		return child.ShillGrant(c.Vnode(), c.Grant())
	case cap.KindPipeEnd:
		return child.ShillGrant(c.PipeObject(), c.Grant())
	case cap.KindPipeFactory:
		// Pipe creation inside a sandbox is uncontrolled in the
		// prototype; pipes a sandbox creates are its own.
		return nil
	case cap.KindSocketFactory:
		return child.ShillGrantSocketFactory(c.SocketDomain(), c.Grant())
	}
	return errno.EINVAL
}

// bareLookup is the ancestor grant: lookup (deriving nothing), plus stat
// and path so executables can probe the prefix directories of the paths
// they were handed — but no read, write, or contents authority.
var bareLookup = func() *priv.Grant {
	g := priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath)
	return g.WithDerived(priv.RLookup, &priv.Grant{})
}()

func grantAncestorLookups(child *kernel.Proc, c *cap.Capability) error {
	fs := child.Kernel().FS
	seen := 0
	for vn := fs.Parent(c.Vnode()); vn != nil; vn = fs.Parent(vn) {
		if err := child.ShillGrant(vn, bareLookup); err != nil {
			return err
		}
		if vn == fs.Root() {
			return nil
		}
		if seen++; seen > 256 {
			return errno.ELOOP
		}
	}
	return nil
}

// stdioFD converts a stdio capability into a file descriptor. Read/write
// direction follows the slot: stdin is read-only, stdout/stderr are
// append-mode writers (so concurrent sandboxes interleave whole writes).
func stdioFD(c *cap.Capability, isInput bool) (*kernel.FileDesc, error) {
	if c == nil {
		return nil, nil
	}
	switch c.Kind() {
	case cap.KindFile:
		vn := c.Vnode()
		if isInput {
			return kernel.NewVnodeFD(vn, true, false, false), nil
		}
		return kernel.NewVnodeFD(vn, false, true, true), nil
	case cap.KindPipeEnd:
		return kernel.NewPipeFD(c.PipeObject(), c.PipeIsReadEnd()), nil
	}
	return nil, errno.EINVAL
}

// releaseStdio drops the construction references now that SetStdio has
// duplicated them into the child.
func releaseStdio(fds ...*kernel.FileDesc) {
	for _, fd := range fds {
		if fd != nil {
			fd.Release()
		}
	}
}
