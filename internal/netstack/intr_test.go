package netstack

import (
	"errors"
	"testing"
	"time"

	"repro/internal/errno"
)

// --- interruptible waits ---

func TestAcceptIntrWokenByInterrupt(t *testing.T) {
	st := New()
	defer st.Shutdown()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "71"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	intr := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := st.AcceptIntr(l, intr)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the accepter park
	close(intr)
	select {
	case err := <-done:
		if !errors.Is(err, errno.EINTR) {
			t.Fatalf("interrupted accept = %v, want EINTR", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept still blocked after interrupt")
	}
	// The listener survives the interruption: a real connection is still
	// accepted afterwards.
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "71"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AcceptIntr(l, nil); err != nil {
		t.Fatalf("accept after interruption = %v", err)
	}
}

func TestRecvIntrWokenByInterrupt(t *testing.T) {
	st := New()
	defer st.Shutdown()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "72"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "72"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Accept(l); err != nil {
		t.Fatal(err)
	}
	intr := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := st.RecvIntr(c, buf, intr)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(intr)
	select {
	case err := <-done:
		if !errors.Is(err, errno.EINTR) {
			t.Fatalf("interrupted recv = %v, want EINTR", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv still blocked after interrupt")
	}
}

func TestAcceptIntrAlreadyFired(t *testing.T) {
	st := New()
	defer st.Shutdown()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "73"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	intr := make(chan struct{})
	close(intr)
	if _, err := st.AcceptIntr(l, intr); !errors.Is(err, errno.EINTR) {
		t.Fatalf("accept with pre-fired interrupt = %v, want EINTR", err)
	}
}

// --- listener-ready notification (the ex-poll-loop) ---

func TestWaitListenerSignalledByListen(t *testing.T) {
	st := New()
	defer st.Shutdown()
	done := make(chan error, 1)
	go func() {
		done <- st.WaitListener(DomainIP, "81", 5*time.Second, nil)
	}()
	time.Sleep(10 * time.Millisecond) // waiter parks before the bind
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "81"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitListener = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitListener missed the Listen signal")
	}
}

func TestWaitListenerImmediateWhenListening(t *testing.T) {
	st := New()
	defer st.Shutdown()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "82"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	if err := st.WaitListener(DomainIP, "82", time.Second, nil); err != nil {
		t.Fatalf("WaitListener on live listener = %v", err)
	}
}

func TestWaitListenerTimeout(t *testing.T) {
	st := New()
	defer st.Shutdown()
	start := time.Now()
	err := st.WaitListener(DomainIP, "83", 30*time.Millisecond, nil)
	if !errors.Is(err, errno.ETIMEDOUT) {
		t.Fatalf("WaitListener with nobody listening = %v, want ETIMEDOUT", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout far exceeded the requested bound")
	}
}

func TestWaitListenerInterrupted(t *testing.T) {
	st := New()
	defer st.Shutdown()
	intr := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- st.WaitListener(DomainIP, "84", 10*time.Second, intr)
	}()
	time.Sleep(10 * time.Millisecond)
	close(intr)
	select {
	case err := <-done:
		if !errors.Is(err, errno.EINTR) {
			t.Fatalf("interrupted WaitListener = %v, want EINTR", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitListener ignored the interrupt")
	}
}

func TestWaitListenerLeavesNoWaiterEntries(t *testing.T) {
	st := New()
	defer st.Shutdown()
	// Timed-out probes of never-bound addresses must not grow the ready
	// map for the stack's lifetime.
	for i := 0; i < 5; i++ {
		addr := string(rune('a' + i))
		if err := st.WaitListener(DomainIP, addr, time.Millisecond, nil); !errors.Is(err, errno.ETIMEDOUT) {
			t.Fatalf("probe %d = %v", i, err)
		}
	}
	// The immediate-success path must clean up after itself too.
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "86"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	if err := st.WaitListener(DomainIP, "86", time.Second, nil); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	n := len(st.ready)
	st.mu.Unlock()
	if n != 0 {
		t.Fatalf("ready map retains %d entries after all waiters left", n)
	}
}

func TestWaitListenerWokenByShutdown(t *testing.T) {
	st := New()
	done := make(chan error, 1)
	go func() {
		done <- st.WaitListener(DomainIP, "85", 10*time.Second, nil)
	}()
	time.Sleep(10 * time.Millisecond)
	st.Shutdown()
	select {
	case err := <-done:
		if !errors.Is(err, errno.ECONNABORTED) {
			t.Fatalf("WaitListener after shutdown = %v, want ECONNABORTED", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitListener survived stack shutdown")
	}
}
