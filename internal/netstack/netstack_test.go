package netstack

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/errno"
)

func TestConnectAcceptEcho(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "9000"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	done := make(chan string, 1)
	go func() {
		conn, err := st.Accept(l)
		if err != nil {
			done <- "accept: " + err.Error()
			return
		}
		buf := make([]byte, 16)
		n, _ := st.Recv(conn, buf)
		st.Send(conn, buf[:n])
		st.Close(conn)
		done <- ""
	}()
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "9000"); err != nil {
		t.Fatal(err)
	}
	st.Send(c, []byte("hello"))
	buf := make([]byte, 16)
	n, err := st.Recv(c, buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo = %q, %v", buf[:n], err)
	}
	if msg := <-done; msg != "" {
		t.Fatal(msg)
	}
	// Peer closed: EOF.
	if n, err := st.Recv(c, buf); n != 0 || err != nil {
		t.Fatalf("EOF = %d, %v", n, err)
	}
}

func TestConnectRefused(t *testing.T) {
	st := New()
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "7"); !errors.Is(err, errno.ECONNREFUSED) {
		t.Fatalf("connect to unbound port = %v", err)
	}
}

func TestAddrInUse(t *testing.T) {
	st := New()
	a := st.NewSocket(DomainIP)
	if err := st.Bind(a, "80"); err != nil {
		t.Fatal(err)
	}
	b := st.NewSocket(DomainIP)
	if err := st.Bind(b, "80"); !errors.Is(err, errno.EADDRINUSE) {
		t.Fatalf("second bind = %v", err)
	}
	// Different domains have separate namespaces.
	u := st.NewSocket(DomainUnix)
	if err := st.Bind(u, "80"); err != nil {
		t.Fatalf("unix bind: %v", err)
	}
	// Closing the listener frees the address.
	st.Close(a)
	c := st.NewSocket(DomainIP)
	if err := st.Bind(c, "80"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	st := New()
	s := st.NewSocket(DomainIP)
	if err := st.Listen(s); !errors.Is(err, errno.EINVAL) {
		t.Fatalf("listen unbound = %v", err)
	}
	if _, err := st.Send(s, []byte("x")); !errors.Is(err, errno.ENOTCONN) {
		t.Fatalf("send unconnected = %v", err)
	}
	if _, err := st.Recv(s, make([]byte, 1)); !errors.Is(err, errno.ENOTCONN) {
		t.Fatalf("recv unconnected = %v", err)
	}
}

func TestSendToClosedPeer(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	st.Bind(l, "81")
	st.Listen(l)
	accepted := make(chan *Socket, 1)
	go func() {
		conn, _ := st.Accept(l)
		accepted <- conn
	}()
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "81"); err != nil {
		t.Fatal(err)
	}
	conn := <-accepted
	st.Close(conn)
	if _, err := st.Send(c, []byte("x")); !errors.Is(err, errno.EPIPE) {
		t.Fatalf("send to closed peer = %v", err)
	}
}

func TestCloseListenerUnblocksAccept(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	st.Bind(l, "82")
	st.Listen(l)
	done := make(chan error, 1)
	go func() {
		_, err := st.Accept(l)
		done <- err
	}()
	st.Close(l)
	if err := <-done; err == nil {
		t.Fatal("accept returned nil after close")
	}
}

func TestConcurrentClients(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	st.Bind(l, "83")
	st.Listen(l)
	const n = 16
	go func() {
		for i := 0; i < n; i++ {
			conn, err := st.Accept(l)
			if err != nil {
				return
			}
			go func(conn *Socket) {
				buf := make([]byte, 8)
				cnt, _ := st.Recv(conn, buf)
				st.Send(conn, buf[:cnt])
				st.Close(conn)
			}(conn)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := st.NewSocket(DomainIP)
			if err := st.Connect(c, "83"); err != nil {
				t.Errorf("connect %d: %v", i, err)
				return
			}
			msg := []byte{byte('a' + i%26)}
			st.Send(c, msg)
			buf := make([]byte, 4)
			cnt, err := st.Recv(c, buf)
			if err != nil || cnt != 1 || buf[0] != msg[0] {
				t.Errorf("client %d echo mismatch", i)
			}
			st.Close(c)
		}(i)
	}
	wg.Wait()
}

func TestLargeTransferBackpressure(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	st.Bind(l, "84")
	st.Listen(l)
	const total = sockBufCap * 3
	go func() {
		conn, _ := st.Accept(l)
		data := make([]byte, total)
		st.Send(conn, data)
		st.Close(conn)
	}()
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "84"); err != nil {
		t.Fatal(err)
	}
	got := 0
	buf := make([]byte, 64*1024)
	for {
		n, err := st.Recv(c, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		got += n
	}
	if got != total {
		t.Fatalf("received %d of %d bytes", got, total)
	}
}

// TestCloseListenerAbortsBlockedAccept is the regression test for the
// internal/lang 600s hang: an accepter parked on a listener's condition
// variable must be woken by Close and must see ECONNABORTED, not wait
// for a connection that can never arrive.
func TestCloseListenerAbortsBlockedAccept(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "90"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := st.Accept(l)
		done <- err
	}()
	<-started
	st.Close(l)
	if err := <-done; !errors.Is(err, errno.ECONNABORTED) {
		t.Fatalf("accept after close = %v, want ECONNABORTED", err)
	}
}

// TestStackShutdownWakesAccepters: shutting the whole stack down closes
// every listener, wakes all blocked accepters, and refuses new binds.
func TestStackShutdownWakesAccepters(t *testing.T) {
	st := New()
	const n = 4
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		l := st.NewSocket(DomainIP)
		if err := st.Bind(l, "91"+string(rune('0'+i))); err != nil {
			t.Fatal(err)
		}
		if err := st.Listen(l); err != nil {
			t.Fatal(err)
		}
		go func(l *Socket) {
			_, err := st.Accept(l)
			errs <- err
		}(l)
	}
	st.Shutdown()
	for i := 0; i < n; i++ {
		if err := <-errs; !errors.Is(err, errno.ECONNABORTED) {
			t.Fatalf("accept after shutdown = %v, want ECONNABORTED", err)
		}
	}
	s := st.NewSocket(DomainIP)
	if err := st.Bind(s, "999"); !errors.Is(err, errno.ECONNABORTED) {
		t.Fatalf("bind after shutdown = %v, want ECONNABORTED", err)
	}
	st.Shutdown() // idempotent
}

// TestStackShutdownWakesBlockedRecv: a goroutine parked in Recv on an
// established connection whose peer was abandoned (never closed) must
// be woken by Shutdown, not leak forever.
func TestStackShutdownWakesBlockedRecv(t *testing.T) {
	st := New()
	l := st.NewSocket(DomainIP)
	if err := st.Bind(l, "95"); err != nil {
		t.Fatal(err)
	}
	if err := st.Listen(l); err != nil {
		t.Fatal(err)
	}
	c := st.NewSocket(DomainIP)
	if err := st.Connect(c, "95"); err != nil {
		t.Fatal(err)
	}
	srv, err := st.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		buf := make([]byte, 16)
		st.Recv(srv, buf) // blocks: the client never sends and never closes
		close(done)
	}()
	st.Shutdown()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still blocked after stack shutdown")
	}
}
