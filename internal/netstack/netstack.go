// Package netstack is an in-memory socket substrate: IP and Unix-domain
// stream sockets over a loopback wire. It stands in for the FreeBSD
// network stack in the paper's Apache case study and download benchmark.
// Sockets carry MAC labels so the SHILL policy can gate the seven socket
// operations (create, bind, connect, listen, accept, send, receive); the
// kernel layer invokes those checks, not this package.
package netstack

import (
	"sort"
	"sync"
	"time"

	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/trace"
)

// interrupted reports whether an interrupt channel has fired. A nil
// channel never interrupts, so uninterruptible callers pass nil and pay
// nothing.
func interrupted(intr <-chan struct{}) bool {
	if intr == nil {
		return false
	}
	select {
	case <-intr:
		return true
	default:
		return false
	}
}

// watch wakes cond via wake() when intr fires, until stop is closed.
// Blocking waits arm a watcher only once they are actually about to
// park, so the established fast paths never pay a goroutine spawn.
func watch(intr <-chan struct{}, stop <-chan struct{}, wake func()) {
	go func() {
		select {
		case <-intr:
			wake()
		case <-stop:
		}
	}()
}

// Domain distinguishes socket address families.
type Domain int

// Socket domains. The paper's Figure 7 permits capability-mediated IP
// and Unix sockets and denies every other family.
const (
	DomainIP Domain = iota
	DomainUnix
	DomainOther // any unsupported family; always denied by the kernel
)

func (d Domain) String() string {
	switch d {
	case DomainIP:
		return "ip"
	case DomainUnix:
		return "unix"
	}
	return "other"
}

// sockBufCap bounds each direction's in-flight bytes.
const sockBufCap = 256 * 1024

// halfConn is one direction of an established connection.
type halfConn struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	closed bool
}

func newHalfConn() *halfConn {
	h := &halfConn{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// wake re-evaluates any waiter's condition (interrupt delivery).
func (h *halfConn) wake() {
	h.mu.Lock()
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *halfConn) write(p []byte, intr <-chan struct{}) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	total := 0
	var stop chan struct{}
	for len(p) > 0 {
		if h.closed {
			return total, errno.EPIPE
		}
		space := sockBufCap - len(h.buf)
		for space <= 0 && !h.closed {
			if interrupted(intr) {
				return total, errno.EINTR
			}
			if intr != nil && stop == nil {
				stop = make(chan struct{})
				defer close(stop)
				watch(intr, stop, h.wake)
			}
			h.cond.Wait()
			space = sockBufCap - len(h.buf)
		}
		if h.closed {
			return total, errno.EPIPE
		}
		n := len(p)
		if n > space {
			n = space
		}
		h.buf = append(h.buf, p[:n]...)
		p = p[n:]
		total += n
		h.cond.Broadcast()
	}
	return total, nil
}

func (h *halfConn) read(p []byte, intr <-chan struct{}) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var stop chan struct{}
	for len(h.buf) == 0 {
		if h.closed {
			return 0, nil // EOF
		}
		if interrupted(intr) {
			return 0, errno.EINTR
		}
		if intr != nil && stop == nil {
			stop = make(chan struct{})
			defer close(stop)
			watch(intr, stop, h.wake)
		}
		h.cond.Wait()
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	h.cond.Broadcast()
	return n, nil
}

func (h *halfConn) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

// SockState tracks a socket through its lifecycle.
type SockState int

// Socket states.
const (
	StateNew SockState = iota
	StateBound
	StateListening
	StateConnected
	StateClosed
)

// Socket is a stream socket endpoint.
type Socket struct {
	stack  *Stack
	domain Domain

	mu      sync.Mutex
	cond    *sync.Cond
	state   SockState
	addr    string // bound address ("port:N" or unix path)
	backlog []*Socket
	rx, tx  *halfConn
	peer    *Socket

	label mac.Label
}

// MACLabel returns the socket's MAC label.
func (s *Socket) MACLabel() *mac.Label { return &s.label }

// Stack returns the stack that owns the socket.
func (s *Socket) Stack() *Stack { return s.stack }

// Domain returns the socket's address family.
func (s *Socket) Domain() Domain { return s.domain }

// State returns the socket's lifecycle state.
func (s *Socket) State() SockState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Addr returns the bound address, if any.
func (s *Socket) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Stack is the loopback network: a table of bound listeners per domain.
// The listener table is read-mostly (every Connect consults it, binds
// and closes mutate it), so it is guarded by an RWMutex rather than
// serialising all dials through one exclusive lock.
type Stack struct {
	mu        sync.RWMutex
	listeners map[string]*Socket // key: domain-prefixed address
	socks     map[*Socket]struct{}
	down      bool // Shutdown was called

	// ready holds one broadcast entry per address with waiters parked in
	// WaitListener; Listen closes the channel the moment a listener
	// starts accepting, so server-readiness is a notification instead of
	// the connect-poll loop the case-study drivers used to spin. Entries
	// are refcounted by their waiters and removed when the last waiter
	// leaves, so timed-out probes of never-bound addresses cannot grow
	// the map.
	ready map[string]*listenWaiter

	// ops, when set, aggregates per-operation counts and sampled timings
	// under trace.OpNet for the request-tracing layer. Sampled spans that
	// land on a parked Accept/Recv inherit the park time — the standard
	// sampling-profiler caveat, accepted rather than special-cased.
	ops *trace.OpStats
}

// SetOpStats attaches aggregated-op accounting (trace.OpNet). Set it
// before the stack is shared across goroutines; the kernel wires it at
// construction.
func (st *Stack) SetOpStats(o *trace.OpStats) { st.ops = o }

// listenWaiter is one address's readiness broadcast.
type listenWaiter struct {
	ch   chan struct{}
	refs int
}

// New returns an empty loopback stack.
func New() *Stack {
	return &Stack{
		listeners: make(map[string]*Socket),
		socks:     make(map[*Socket]struct{}),
		ready:     make(map[string]*listenWaiter),
	}
}

func (st *Stack) register(s *Socket) {
	st.mu.Lock()
	st.socks[s] = struct{}{}
	st.mu.Unlock()
}

// Listeners returns the domain-prefixed addresses currently bound
// ("ip!80", "unix!/tmp/sock"), sorted. Conformance oracles snapshot it
// before and after a run: a generated program must never leave a
// listener on an address outside its manifest.
func (st *Stack) Listeners() []string {
	st.mu.RLock()
	out := make([]string, 0, len(st.listeners))
	for k := range st.listeners {
		out = append(out, k)
	}
	st.mu.RUnlock()
	sort.Strings(out)
	return out
}

// LiveSockets reports how many sockets are registered (bound, listening,
// or connected and not yet closed) — a leak signal for soak harnesses.
func (st *Stack) LiveSockets() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.socks)
}

// Shutdown tears the stack down: every live socket — listeners and
// established connections alike — is closed, which wakes any goroutine
// still parked in Accept or Recv with an error instead of leaving it on
// a condition variable forever. Subsequent binds fail with
// ECONNABORTED; Shutdown is idempotent.
func (st *Stack) Shutdown() {
	st.mu.Lock()
	if st.down {
		st.mu.Unlock()
		return
	}
	st.down = true
	snapshot := make([]*Socket, 0, len(st.socks))
	for s := range st.socks {
		snapshot = append(snapshot, s)
	}
	for k, w := range st.ready {
		close(w.ch) // wake WaitListener waiters; they observe down
		delete(st.ready, k)
	}
	st.mu.Unlock()
	for _, s := range snapshot {
		st.Close(s)
	}
}

// NewSocket creates an unbound socket. The kernel performs the MAC
// sock-create check before calling this.
func (st *Stack) NewSocket(d Domain) *Socket {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s := &Socket{stack: st, domain: d, state: StateNew}
	s.cond = sync.NewCond(&s.mu)
	st.register(s)
	return s
}

func key(d Domain, addr string) string { return d.String() + "!" + addr }

// Bind attaches the socket to an address (e.g. "8080" for IP, a path for
// Unix sockets). Only one socket may be bound to an address at a time —
// the constraint behind the paper's privilege-amplification socket
// example (§3.2.2).
func (st *Stack) Bind(s *Socket, addr string) error {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateNew {
		return errno.EINVAL
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.down {
		return errno.ECONNABORTED
	}
	k := key(s.domain, addr)
	if _, taken := st.listeners[k]; taken {
		return errno.EADDRINUSE
	}
	st.listeners[k] = s
	s.addr = addr
	s.state = StateBound
	return nil
}

// Listen marks a bound socket as accepting connections and wakes every
// WaitListener waiter parked on its address.
func (st *Stack) Listen(s *Socket) error {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	if s.state != StateBound {
		s.mu.Unlock()
		return errno.EINVAL
	}
	s.state = StateListening
	k := key(s.domain, s.addr)
	s.mu.Unlock()

	st.mu.Lock()
	if w, ok := st.ready[k]; ok {
		close(w.ch)
		delete(st.ready, k)
	}
	st.mu.Unlock()
	return nil
}

// WaitListener blocks until a listener is accepting connections at addr
// in the given domain, the timeout elapses (ETIMEDOUT), intr fires
// (EINTR), or the stack shuts down (ECONNABORTED). Readiness is a
// condition signalled by Listen, not a poll: waiters park on a channel
// and wake the instant the server is reachable.
func (st *Stack) WaitListener(d Domain, addr string, timeout time.Duration, intr <-chan struct{}) error {
	k := key(d, addr)
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		st.mu.Lock()
		if st.down {
			st.mu.Unlock()
			return errno.ECONNABORTED
		}
		l := st.listeners[k]
		w, ok := st.ready[k]
		if !ok {
			w = &listenWaiter{ch: make(chan struct{})}
			st.ready[k] = w
		}
		w.refs++
		st.mu.Unlock()
		// The waiter is registered before the state check, so a Listen
		// racing with this probe is never missed — it will close w.ch.
		// (Checking l outside st.mu also keeps the s.mu -> st.mu lock
		// order Listen uses.)
		var err error
		done := false
		if l != nil && l.State() == StateListening {
			done = true
		} else {
			select {
			case <-w.ch:
				// Signalled: loop to re-check (the listener may already
				// have closed again, or the stack may be shutting down).
			case <-deadline:
				done, err = true, errno.ETIMEDOUT
			case <-intr:
				done, err = true, errno.EINTR
			}
		}
		st.mu.Lock()
		w.refs--
		if w.refs == 0 && st.ready[k] == w {
			delete(st.ready, k) // last waiter out removes the entry
		}
		st.mu.Unlock()
		if done {
			return err
		}
	}
}

// Connect dials the listener bound at addr in the socket's domain and
// blocks until the connection is accepted or refused.
func (st *Stack) Connect(s *Socket, addr string) error {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	if s.state != StateNew {
		s.mu.Unlock()
		return errno.EINVAL
	}
	s.mu.Unlock()

	st.mu.RLock()
	l, ok := st.listeners[key(s.domain, addr)]
	st.mu.RUnlock()
	if !ok {
		return errno.ECONNREFUSED
	}
	l.mu.Lock()
	if l.state != StateListening {
		l.mu.Unlock()
		return errno.ECONNREFUSED
	}
	// Build the two directions and the server-side endpoint.
	c2s, s2c := newHalfConn(), newHalfConn()
	srv := &Socket{stack: st, domain: s.domain, state: StateConnected, rx: c2s, tx: s2c, addr: l.addr}
	srv.cond = sync.NewCond(&srv.mu)
	srv.peer = s
	st.register(srv)
	l.backlog = append(l.backlog, srv)
	l.cond.Broadcast()
	l.mu.Unlock()

	s.mu.Lock()
	s.rx, s.tx = s2c, c2s
	s.state = StateConnected
	s.peer = srv
	s.mu.Unlock()
	return nil
}

// Accept blocks until a connection is queued on the listener and returns
// the server-side endpoint. Closing the listener (or shutting the stack
// down) wakes every blocked accepter, which then returns ECONNABORTED —
// a blocked Accept never outlives its listener.
func (st *Stack) Accept(l *Socket) (*Socket, error) {
	return st.AcceptIntr(l, nil)
}

// AcceptIntr is Accept with an interrupt channel: when intr fires while
// the accepter is parked, it returns EINTR instead of waiting for a
// connection. A nil intr makes it identical to Accept. This is what lets
// a context cancellation stop a script blocked in socket_accept without
// tearing the listener down.
func (st *Stack) AcceptIntr(l *Socket, intr <-chan struct{}) (*Socket, error) {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	l.mu.Lock()
	defer l.mu.Unlock()
	var stop chan struct{}
	for l.state == StateListening && len(l.backlog) == 0 {
		if interrupted(intr) {
			return nil, errno.EINTR
		}
		if intr != nil && stop == nil {
			stop = make(chan struct{})
			defer close(stop)
			watch(intr, stop, func() {
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			})
		}
		l.cond.Wait()
	}
	if l.state == StateClosed {
		return nil, errno.ECONNABORTED
	}
	if l.state != StateListening {
		return nil, errno.EINVAL
	}
	srv := l.backlog[0]
	l.backlog = l.backlog[1:]
	return srv, nil
}

// Send writes to the connection.
func (st *Stack) Send(s *Socket, p []byte) (int, error) {
	return st.SendIntr(s, p, nil)
}

// SendIntr is Send with an interrupt channel (see AcceptIntr): a sender
// parked on a full buffer returns EINTR with the partial count when intr
// fires.
func (st *Stack) SendIntr(s *Socket, p []byte, intr <-chan struct{}) (int, error) {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	tx := s.tx
	state := s.state
	s.mu.Unlock()
	if state != StateConnected || tx == nil {
		return 0, errno.ENOTCONN
	}
	return tx.write(p, intr)
}

// Recv reads from the connection; 0, nil means the peer closed.
func (st *Stack) Recv(s *Socket, p []byte) (int, error) {
	return st.RecvIntr(s, p, nil)
}

// RecvIntr is Recv with an interrupt channel (see AcceptIntr): a reader
// parked on an empty buffer returns EINTR when intr fires.
func (st *Stack) RecvIntr(s *Socket, p []byte, intr <-chan struct{}) (int, error) {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	rx := s.rx
	state := s.state
	s.mu.Unlock()
	if state != StateConnected || rx == nil {
		return 0, errno.ENOTCONN
	}
	return rx.read(p, intr)
}

// Close shuts the socket down: listeners are unbound (waking blocked
// accepts) and connections close both directions.
func (st *Stack) Close(s *Socket) {
	defer st.ops.End(trace.OpNet, st.ops.Begin(trace.OpNet))
	s.mu.Lock()
	prev := s.state
	s.state = StateClosed
	if s.rx != nil {
		s.rx.close()
	}
	if s.tx != nil {
		s.tx.close()
	}
	backlog := s.backlog
	s.backlog = nil
	s.cond.Broadcast()
	addr, domain := s.addr, s.domain
	s.mu.Unlock()

	for _, queued := range backlog {
		st.Close(queued)
	}
	st.mu.Lock()
	delete(st.socks, s)
	if prev == StateBound || prev == StateListening {
		if st.listeners[key(domain, addr)] == s {
			delete(st.listeners, key(domain, addr))
		}
	}
	st.mu.Unlock()
}
