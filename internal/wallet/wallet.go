// Package wallet implements SHILL's capability wallets (§2.4.1, §3.1.4):
// maps from strings to lists of capabilities that "automate and simplify
// the discovery, packaging, and management of capabilities that
// sandboxes need to run executables".
//
// A native wallet is the particular wallet shape the standard library's
// populate_native_wallet builds: PATH and LIBPATH search directories, a
// map of known library dependencies, and a pipe factory. pkg_native (in
// internal/stdlib) consumes it.
package wallet

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/cap"
	"repro/internal/errno"
)

// Well-known native-wallet keys.
const (
	KeyPath        = "PATH"            // executable search directories
	KeyLibPath     = "LD_LIBRARY_PATH" // library search directories
	KeyPipeFactory = "pipe-factory"
	// DepPrefix prefixes per-library known-dependency entries, e.g.
	// "dep:ocamlc" lists extra resources the ocamlc executable needs.
	DepPrefix = "dep:"
)

// Wallet is a mutable map from keys to capability lists. Wallets are the
// only mechanism for "controlled sharing of capabilities" (§2.1); they
// are capability values themselves and flow through contracts.
type Wallet struct {
	mu sync.RWMutex
	m  map[string][]*cap.Capability
}

// New returns an empty wallet.
func New() *Wallet {
	return &Wallet{m: make(map[string][]*cap.Capability)}
}

// Put appends capabilities under a key.
func (w *Wallet) Put(key string, caps ...*cap.Capability) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m[key] = append(w.m[key], caps...)
}

// Set replaces the capabilities under a key.
func (w *Wallet) Set(key string, caps []*cap.Capability) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.m[key] = append([]*cap.Capability(nil), caps...)
}

// Get returns the capabilities under a key.
func (w *Wallet) Get(key string) []*cap.Capability {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]*cap.Capability(nil), w.m[key]...)
}

// Has reports whether the key is present and non-empty.
func (w *Wallet) Has(key string) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.m[key]) > 0
}

// Keys returns the wallet's keys, sorted.
func (w *Wallet) Keys() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	keys := make([]string, 0, len(w.m))
	for k := range w.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Restrict returns a copy of the wallet with every capability attenuated
// by the per-key grants (contract application over wallets). Keys absent
// from grants pass through unchanged.
func (w *Wallet) Restrict(blame string, restrict func(key string, c *cap.Capability) *cap.Capability) *Wallet {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := New()
	for k, caps := range w.m {
		rcaps := make([]*cap.Capability, 0, len(caps))
		for _, c := range caps {
			rcaps = append(rcaps, restrict(k, c))
		}
		out.m[k] = rcaps
	}
	_ = blame
	return out
}

// IsNative reports whether the wallet has the native-wallet shape:
// a PATH, a LIBPATH, and a pipe factory (§3.1.4).
func (w *Wallet) IsNative() bool {
	return w.Has(KeyPath) && w.Has(KeyLibPath) && w.Has(KeyPipeFactory)
}

// FindExecutable searches the PATH directories, in order, for a child
// with the given name, deriving a capability through each directory's
// lookup privilege. The name must be a single component (capability
// safety: wallets present "a familiar path-based interface" but remain
// capability safe, §2.4.1).
func (w *Wallet) FindExecutable(name string) (*cap.Capability, error) {
	return w.searchDirs(KeyPath, name)
}

// FindLibrary searches the LIBPATH directories for a library file.
func (w *Wallet) FindLibrary(name string) (*cap.Capability, error) {
	return w.searchDirs(KeyLibPath, name)
}

func (w *Wallet) searchDirs(key, name string) (*cap.Capability, error) {
	if strings.ContainsAny(name, "/\x00") || name == "" || name == "." || name == ".." {
		return nil, errno.EINVAL
	}
	for _, dir := range w.Get(key) {
		if !dir.IsDir() {
			continue
		}
		child, err := dir.Lookup(name)
		if err == nil {
			return child, nil
		}
	}
	return nil, errno.ENOENT
}

// KnownDeps returns the extra capabilities recorded for an executable
// name via DepPrefix entries.
func (w *Wallet) KnownDeps(name string) []*cap.Capability {
	return w.Get(DepPrefix + name)
}

// PipeFactory returns the wallet's pipe factory, or nil.
func (w *Wallet) PipeFactory() *cap.Capability {
	pf := w.Get(KeyPipeFactory)
	if len(pf) == 0 {
		return nil
	}
	return pf[0]
}

// All returns every capability in the wallet (used when granting a whole
// wallet to a sandbox).
func (w *Wallet) All() []*cap.Capability {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []*cap.Capability
	for _, caps := range w.m {
		out = append(out, caps...)
	}
	return out
}
