package wallet_test

import (
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/cap"
	"repro/internal/kernel"
	"repro/internal/priv"
	"repro/internal/stdlib"
	"repro/internal/wallet"
)

// TestWalletConcurrentRestrictDerive: a wallet shared by concurrent
// goroutines that Put, Get, Restrict, and derive (FindExecutable →
// Lookup) simultaneously must stay race-clean, every derived
// capability must get a unique audit-lineage identity, and attenuation
// must never add rights. Run under -race (CI's race job does).
func TestWalletConcurrentRestrictDerive(t *testing.T) {
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/bin/tool", []byte("#!bin:true\n"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.WriteFile("/lib/libx.so", []byte("lib"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	proc := k.NewProc(1001, 1001)
	bin := cap.NewDir(proc, k.FS.MustResolve("/bin"), priv.FullGrant()).Announce("test")
	lib := cap.NewDir(proc, k.FS.MustResolve("/lib"), priv.FullGrant()).Announce("test")
	pfRoot := cap.NewPipeFactory(proc)

	w := wallet.New()
	w.Put(wallet.KeyPath, bin)
	w.Put(wallet.KeyLibPath, lib)
	w.Put(wallet.KeyPipeFactory, pfRoot)

	const workers = 8
	const iters = 50
	ids := make(chan uint64, workers*iters*2)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 4 {
				case 0: // derive through the wallet's path interface
					c, err := w.FindExecutable("tool")
					if err != nil {
						t.Errorf("FindExecutable: %v", err)
						return
					}
					ids <- c.ID()
				case 1: // attenuate every keyed capability concurrently
					rw := w.Restrict("race", func(key string, c *cap.Capability) *cap.Capability {
						if c.Kind() != cap.KindDir {
							return c
						}
						return c.Restrict(stdlib.ReadOnlyDirGrant, "race:"+key)
					})
					if !rw.IsNative() {
						t.Error("restricted wallet lost its native shape")
						return
					}
					for _, c := range rw.Get(wallet.KeyPath) {
						if c.Grant().Has(priv.RCreateFile) {
							t.Error("Restrict added or kept rights beyond the read-only grant")
							return
						}
						ids <- c.ID()
					}
				case 2: // churn an extra key while readers iterate
					w.Put("dep:tool", lib)
					_ = w.Get("dep:tool")
					_ = w.Keys()
					_ = w.All()
				case 3: // library derivation
					c, err := w.FindLibrary("libx.so")
					if err != nil {
						t.Errorf("FindLibrary: %v", err)
						return
					}
					ids <- c.ID()
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)

	// Lineage identities never alias: every derivation minted a fresh id.
	seen := make(map[uint64]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("capability id %d minted twice — lineage would alias", id)
		}
		seen[id] = true
	}

	// The audit log reconstructs a derived capability's provenance back
	// to a retained ancestor even after the concurrent churn.
	c, err := w.FindExecutable("tool")
	if err != nil {
		t.Fatal(err)
	}
	chain := k.Audit().Lineage(c.ID())
	if len(chain) == 0 {
		t.Fatal("no lineage recorded for a wallet-derived capability")
	}
	last := chain[len(chain)-1]
	if last.CapID != c.ID() {
		t.Fatalf("lineage tail names cap %d, want %d", last.CapID, c.ID())
	}
	for _, e := range chain {
		if e.Kind != audit.KindCapNew && e.Kind != audit.KindCapDerive {
			t.Fatalf("lineage contains non-derivation event %v", e.Kind)
		}
	}
}
