package wallet

import (
	"errors"
	"testing"

	"repro/internal/cap"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/priv"
)

func world(t *testing.T) (*kernel.Kernel, *kernel.Proc) {
	t.Helper()
	k := kernel.New()
	t.Cleanup(k.Shutdown)
	for _, path := range []string{"/bin/cat", "/usr/bin/grep", "/lib/libc.so.7"} {
		if _, err := k.FS.WriteFile(path, []byte("#!bin:x\n"), 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return k, k.NewProc(0, 0)
}

func dirCap(k *kernel.Kernel, p *kernel.Proc, path string) *cap.Capability {
	return cap.NewDir(p, k.FS.MustResolve(path), priv.FullGrant())
}

func TestPutGetKeys(t *testing.T) {
	k, p := world(t)
	w := New()
	bin := dirCap(k, p, "/bin")
	w.Put(KeyPath, bin)
	w.Put(KeyPath, dirCap(k, p, "/usr/bin"))
	if got := len(w.Get(KeyPath)); got != 2 {
		t.Fatalf("PATH entries = %d", got)
	}
	if !w.Has(KeyPath) || w.Has(KeyLibPath) {
		t.Fatal("Has broken")
	}
	keys := w.Keys()
	if len(keys) != 1 || keys[0] != KeyPath {
		t.Fatalf("Keys = %v", keys)
	}
	// Get returns a copy: mutating it does not affect the wallet.
	got := w.Get(KeyPath)
	got[0] = nil
	if w.Get(KeyPath)[0] == nil {
		t.Fatal("Get aliases internal storage")
	}
}

func TestFindExecutableSearchOrder(t *testing.T) {
	k, p := world(t)
	w := New()
	w.Put(KeyPath, dirCap(k, p, "/bin"), dirCap(k, p, "/usr/bin"))
	c, err := w.FindExecutable("grep")
	if err != nil {
		t.Fatal(err)
	}
	if path, _ := c.Path(); path != "/usr/bin/grep" {
		t.Fatalf("found %s", path)
	}
	if _, err := w.FindExecutable("nonesuch"); !errors.Is(err, errno.ENOENT) {
		t.Fatalf("missing executable = %v", err)
	}
}

func TestFindExecutableCapabilitySafety(t *testing.T) {
	k, p := world(t)
	w := New()
	w.Put(KeyPath, dirCap(k, p, "/bin"))
	// Path-like names must be rejected: the wallet's path-based interface
	// stays capability safe (§2.4.1).
	for _, name := range []string{"../etc/passwd", "a/b", "..", ".", ""} {
		if _, err := w.FindExecutable(name); err == nil {
			t.Errorf("FindExecutable(%q) succeeded", name)
		}
	}
}

func TestFindExecutableRespectsLookupPrivilege(t *testing.T) {
	k, p := world(t)
	w := New()
	noLookup := cap.NewDir(p, k.FS.MustResolve("/bin"), priv.NewGrant(priv.RContents))
	w.Put(KeyPath, noLookup)
	if _, err := w.FindExecutable("cat"); err == nil {
		t.Fatal("found an executable through a lookup-less capability")
	}
}

func TestKnownDeps(t *testing.T) {
	k, p := world(t)
	w := New()
	lib := dirCap(k, p, "/lib")
	w.Put(DepPrefix+"ocamlc", lib)
	deps := w.KnownDeps("ocamlc")
	if len(deps) != 1 || deps[0] != lib {
		t.Fatalf("KnownDeps = %v", deps)
	}
	if len(w.KnownDeps("other")) != 0 {
		t.Fatal("unexpected deps")
	}
}

func TestIsNative(t *testing.T) {
	k, p := world(t)
	w := New()
	if w.IsNative() {
		t.Fatal("empty wallet is native")
	}
	w.Put(KeyPath, dirCap(k, p, "/bin"))
	w.Put(KeyLibPath, dirCap(k, p, "/lib"))
	w.Put(KeyPipeFactory, cap.NewPipeFactory(p))
	if !w.IsNative() {
		t.Fatal("complete wallet not native")
	}
	if w.PipeFactory() == nil {
		t.Fatal("PipeFactory nil")
	}
}

func TestRestrictProducesNewWallet(t *testing.T) {
	k, p := world(t)
	w := New()
	w.Put(KeyPath, dirCap(k, p, "/bin"))
	r := w.Restrict("test", func(key string, c *cap.Capability) *cap.Capability {
		return c.Restrict(priv.NewGrant(priv.RLookup), "test")
	})
	if r.Get(KeyPath)[0].Grant().Rights.Has(priv.RRead) {
		t.Fatal("restriction not applied")
	}
	if !w.Get(KeyPath)[0].Grant().Rights.Has(priv.RRead) {
		t.Fatal("original wallet modified")
	}
}

func TestAll(t *testing.T) {
	k, p := world(t)
	w := New()
	w.Put(KeyPath, dirCap(k, p, "/bin"))
	w.Put(KeyLibPath, dirCap(k, p, "/lib"))
	if got := len(w.All()); got != 2 {
		t.Fatalf("All = %d entries", got)
	}
}
