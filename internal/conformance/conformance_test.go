// Package conformance verifies the paper's structural claims against the
// implementation: the Figure 7 resource-protection matrix, the sandbox
// counts behind Figure 10, the §3.2.2 privilege-amplification defence,
// and the case-study security guarantees in one place.
package conformance

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/internal/sandbox"
	"repro/internal/stdlib"
	"repro/shill"
)

// bg: conformance runs have no deadlines.
var bg = context.Background()

// newMachine builds a machine through the public embedding API, for the
// subtests that exercise drivers rather than raw kernel surfaces.
func newMachine(t *testing.T, opts ...shill.Option) *shill.Machine {
	t.Helper()
	m, err := shill.NewMachine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// sandboxedProc builds a machine and an entered session with no grants.
func sandboxedProc(t *testing.T) (*core.System, *kernel.Proc) {
	t.Helper()
	s := core.NewSystem(core.Config{InstallModule: true})
	t.Cleanup(s.Close)
	child, err := s.Runtime.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	return s, child
}

// TestFigure7ProtectionMatrix walks every row of Figure 7.
func TestFigure7ProtectionMatrix(t *testing.T) {
	t.Run("files-dirs-links: capabilities in language and sandbox", func(t *testing.T) {
		s, sb := sandboxedProc(t)
		// Sandbox: no capability, no access.
		if _, err := sb.OpenAt(kernel.AtCWD, "/etc/passwd", kernel.ORead, 0); !errors.Is(err, errno.EACCES) {
			t.Fatalf("sandbox open without capability = %v", err)
		}
		// Language: operations demand capability privileges (see
		// internal/cap tests); spot-check here.
		c := cap.NewFile(s.Runtime, s.K.FS.MustResolve("/etc/passwd"), priv.NewGrant(priv.RStat))
		if _, err := c.Read(); err == nil {
			t.Fatal("language read without +read")
		}
	})

	t.Run("pipes: capabilities", func(t *testing.T) {
		s, sb := sandboxedProc(t)
		_ = s
		pf := cap.NewPipeFactory(s.Runtime)
		r, w, _ := pf.CreatePipe()
		_ = r
		// The sandboxed process has no grant on the pipe.
		fd, err := sb.InstallFD(kernel.NewPipeFD(w.PipeObject(), false))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Write(fd, []byte("x")); !errors.Is(err, errno.EACCES) {
			t.Fatalf("sandbox pipe write without grant = %v", err)
		}
	})

	t.Run("char devices: capabilities, unmediated IO (limitation)", func(t *testing.T) {
		s, sb := sandboxedProc(t)
		// Opening the device by path is mediated (lookup checks fail)...
		if _, err := sb.OpenAt(kernel.AtCWD, "/dev/null", kernel.OWrite, 0); !errors.Is(err, errno.EACCES) {
			t.Fatalf("device open = %v", err)
		}
		// ...but once a device descriptor is in hand, reads and writes
		// bypass the MAC framework — the §3.2.3 limitation, reproduced.
		fd, err := sb.InstallFD(kernel.NewVnodeFD(s.K.FS.MustResolve("/dev/null"), true, true, false))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Write(fd, []byte("x")); err != nil {
			t.Fatalf("device write should bypass MAC: %v", err)
		}
	})

	t.Run("sockets ip/unix: capabilities via factories", func(t *testing.T) {
		_, sb := sandboxedProc(t)
		if _, err := sb.Socket(netstack.DomainIP); !errors.Is(err, errno.EACCES) {
			t.Fatalf("socket without factory = %v", err)
		}
	})

	t.Run("sockets other: denied", func(t *testing.T) {
		s, sb := sandboxedProc(t)
		if _, err := sb.Socket(netstack.DomainOther); !errors.Is(err, errno.EPERM) {
			t.Fatalf("other-family socket in sandbox = %v", err)
		}
		// Denied even outside a sandbox.
		if _, err := s.Runtime.Socket(netstack.DomainOther); !errors.Is(err, errno.EPERM) {
			t.Fatalf("other-family socket ambient = %v", err)
		}
	})

	t.Run("processes: ulimit in language, confinement in sandbox", func(t *testing.T) {
		s, sb := sandboxedProc(t)
		outsider := s.K.NewProc(core.UserUID, core.UserUID)
		if err := sb.Kill(outsider.PID()); !errors.Is(err, errno.EPERM) {
			t.Fatalf("cross-session signal = %v", err)
		}
		// ulimit attenuation is available on exec (tested in sandbox).
		lim := sb.Limits()
		lim.MaxOpenFiles = 1
		sb.SetLimits(lim)
		if got := sb.Limits().MaxOpenFiles; got != 1 {
			t.Fatalf("ulimit not applied: %d", got)
		}
	})

	t.Run("sysctl: read-only in sandbox", func(t *testing.T) {
		_, sb := sandboxedProc(t)
		if _, err := sb.SysctlGet("kern.ostype"); err != nil {
			t.Fatalf("sysctl read = %v", err)
		}
		if err := sb.SysctlSet("kern.ostype", "x"); !errors.Is(err, errno.EPERM) {
			t.Fatalf("sysctl write = %v", err)
		}
	})

	t.Run("kenv, kmod, posix ipc, sysv ipc: denied", func(t *testing.T) {
		_, sb := sandboxedProc(t)
		if _, err := sb.KenvGet("kernelname"); !errors.Is(err, errno.EPERM) {
			t.Fatalf("kenv = %v", err)
		}
		if err := sb.KldLoad("evil.ko"); !errors.Is(err, errno.EPERM) {
			t.Fatalf("kldload = %v", err)
		}
		if err := sb.KldUnload("shill.ko"); !errors.Is(err, errno.EPERM) {
			t.Fatalf("kldunload = %v", err)
		}
		if err := sb.SemOpen("/s", 1); !errors.Is(err, errno.EPERM) {
			t.Fatalf("sem_open = %v", err)
		}
		if err := sb.ShmGet(1, 64); !errors.Is(err, errno.EPERM) {
			t.Fatalf("shmget = %v", err)
		}
	})

	t.Run("language: no ambient resource builtins", func(t *testing.T) {
		m := newMachine(t)
		m.AddScript("probe.cap", `#lang shill/cap
provide probe : {} -> void;
probe = fun() { sysctl("kern.ostype"); };
`)
		_, err := m.DefaultSession().Run(bg, shill.Script{Name: "m.ambient",
			Source: "#lang shill/ambient\nrequire \"probe.cap\";\nprobe();\n"})
		if err == nil || !strings.Contains(err.Error(), "unbound identifier") {
			t.Fatalf("language sysctl = %v", err)
		}
	})
}

// TestFigure2CapabilityLifecycle walks the paper's Figure 2 end to end:
// an ambient script acquires a capability for foo.txt with the user's
// full authority; the capability passes through a contract that
// restricts it to +read; the capability-safe script runs an executable
// in a sandbox granting it that capability; and the sandboxed process
// can read foo.txt — and nothing else.
func TestFigure2CapabilityLifecycle(t *testing.T) {
	m := newMachine(t)
	if err := m.WriteFile("/home/user/foo.txt", []byte("foo-data"), 0o644, shill.UserUID); err != nil {
		t.Fatal(err)
	}
	m.AddScript("reader.cap", `#lang shill/cap
require shill/native;

provide read_in_sandbox :
  {wallet : native_wallet, f : file(+read, +path),
   out : file(+write, +append)} -> is_num;

read_in_sandbox = fun(wallet, f, out) {
  c = pkg_native("cat", wallet);
  code = c([f], stdout = out);

  # The contract narrowed the capability: writing through it fails in
  # the language too.
  werr = write(f, "defaced");
  if is_syserror(werr) then { code; } else { 0 - 1; }
};
`)
	ambient := `#lang shill/ambient
require shill/native;
require "reader.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root, "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());
foo = open_file("/home/user/foo.txt");
out = open_file("/dev/console");
read_in_sandbox(wallet, foo, out);
`
	res, err := m.DefaultSession().Run(bg, shill.Script{Name: "fig2.ambient", Source: ambient})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Console, "foo-data") {
		t.Fatalf("sandboxed cat did not read foo.txt: %q", res.Console)
	}
	if got, _ := m.ReadFile("/home/user/foo.txt"); got != "foo-data" {
		t.Fatalf("foo.txt was modified through a +read capability: %q", got)
	}
}

// TestSandboxCountsMatchPaperFormula verifies the sandbox-count structure
// behind Figure 10: Grading (SHILL version) creates
// students×(tests+2) + 3 sandboxes; Find creates one per .c file + 1;
// Download creates 2; Uninstall's gmake run creates 2 (ldd + gmake).
func TestSandboxCountsMatchPaperFormula(t *testing.T) {
	t.Run("grading", func(t *testing.T) {
		m := newMachine(t, shill.WithConsoleLimit(1<<20))
		w := shill.GradingWorkload{Students: 5, Tests: 3}
		m.BuildGradingCourse(w)
		m.Prof().Reset()
		if err := m.RunGrading(bg, shill.ModeShill); err != nil {
			t.Fatal(err)
		}
		want := int64(w.Students*(w.Tests+2) + 3)
		if got := m.Prof().Count(prof.SandboxSetup); got != want {
			t.Fatalf("grading sandboxes = %d, want %d", got, want)
		}
	})
	t.Run("grading full-scale formula hits 5371", func(t *testing.T) {
		w := shill.FullScaleGrading
		if got := w.Students*(w.Tests+2) + 3; got != 5371 {
			t.Fatalf("formula gives %d, paper says 5371", got)
		}
	})
	t.Run("find", func(t *testing.T) {
		m := newMachine(t, shill.WithConsoleLimit(1<<20))
		_, cFiles, _ := m.BuildSrcTree(shill.DefaultFind)
		m.Prof().Reset()
		if err := m.RunFind(bg, shill.ModeShill); err != nil {
			t.Fatal(err)
		}
		if got := m.Prof().Count(prof.SandboxSetup); got != int64(cFiles+1) {
			t.Fatalf("find sandboxes = %d, want %d", got, cFiles+1)
		}
	})
	t.Run("download", func(t *testing.T) {
		m := newMachine(t, shill.WithConsoleLimit(1<<20))
		m.BuildEmacsOrigin(shill.DefaultEmacs)
		stop, err := m.StartOrigin()
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		m.Prof().Reset()
		if err := m.RunEmacsStep(bg, shill.StepDownload, shill.ModeSandboxed); err != nil {
			t.Fatal(err)
		}
		// "one for pkg-native and one for the executable, curl" (§4.2).
		if got := m.Prof().Count(prof.SandboxSetup); got != 2 {
			t.Fatalf("download sandboxes = %d, want 2", got)
		}
	})
}

// TestAmplificationDefence verifies the §3.2.2 no-merge rule blocks the
// attack that succeeds when the defence is ablated: two grants whose
// create-file modifiers differ (read-only vs write-only created files)
// must not combine into read+write created files.
func TestAmplificationDefence(t *testing.T) {
	attack := func(defence bool) (createdReadable, createdWritable bool) {
		k := kernel.New()
		pol := k.InstallShillModule()
		defer k.Shutdown()
		pol.SetAmplificationDefence(defence)
		if _, err := k.FS.MkdirAll("/box", 0o777, 0, 0); err != nil {
			t.Fatal(err)
		}
		p := k.NewProc(0, 0)
		child, err := p.Fork()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
		// Path resolution needs lookup on the root (deriving nothing).
		rootGrant := priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, &priv.Grant{})
		if err := child.ShillGrant(k.FS.Root(), rootGrant); err != nil {
			t.Fatal(err)
		}
		box := k.FS.MustResolve("/box")
		readCreate := priv.NewGrant(priv.RLookup, priv.RCreateFile).
			WithDerived(priv.RCreateFile, priv.NewGrant(priv.RRead, priv.RStat))
		writeCreate := priv.NewGrant(priv.RLookup, priv.RCreateFile).
			WithDerived(priv.RCreateFile, priv.NewGrant(priv.RWrite, priv.RAppend))
		if err := child.ShillGrant(box, readCreate); err != nil {
			t.Fatal(err)
		}
		if err := child.ShillGrant(box, writeCreate); err != nil {
			t.Fatal(err)
		}
		if err := child.ShillEnter(); err != nil {
			t.Fatal(err)
		}
		fd, err := child.OpenAt(kernel.AtCWD, "/box/f", kernel.OCreate|kernel.OWrite, 0o666)
		if err == nil {
			child.Close(fd)
		}
		_, rerr := child.OpenAt(kernel.AtCWD, "/box/f", kernel.ORead, 0)
		_, werr := child.OpenAt(kernel.AtCWD, "/box/f", kernel.OWrite, 0)
		return rerr == nil, werr == nil
	}

	r, w := attack(true)
	if r && w {
		t.Fatal("defence on: created file is both readable and writable (amplified)")
	}
	r, w = attack(false)
	if !(r && w) {
		t.Fatalf("defence off: expected amplification to succeed, got read=%v write=%v", r, w)
	}
}

// TestAttenuationOnlyProperty: a sub-session can never exceed its
// parent's authority, whatever grants it requests.
func TestAttenuationOnlyProperty(t *testing.T) {
	s := core.NewSystem(core.Config{InstallModule: true})
	t.Cleanup(s.Close)
	vn, err := s.K.FS.WriteFile("/secret.txt", []byte("s"), 0o666, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := s.Runtime.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.ShillInit(kernel.SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := parent.ShillGrant(vn, priv.NewGrant(priv.RRead, priv.RStat)); err != nil {
		t.Fatal(err)
	}
	if err := parent.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	for _, g := range []*priv.Grant{
		priv.NewGrant(priv.RWrite),
		priv.NewGrant(priv.RRead, priv.RWrite),
		priv.FullGrant(),
	} {
		sub, err := parent.Fork()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sub.ShillInit(kernel.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := sub.ShillGrant(vn, g); !errors.Is(err, errno.EPERM) {
			t.Fatalf("sub-session acquired %v: err=%v", g, err)
		}
		sub.Exit(0)
		parent.Wait(sub.PID())
	}
}

// TestPayAsYouGo is the paper's headline performance claim (§4): with
// the module installed but no sandboxes, behaviour is identical to
// baseline — checked functionally: every syscall an unsandboxed process
// makes succeeds exactly as without the module.
func TestPayAsYouGo(t *testing.T) {
	run := func(install bool) string {
		m, err := shill.NewMachine(shill.WithModule(install), shill.WithConsoleLimit(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		m.BuildGradingCourse(shill.GradingWorkload{Students: 3, Tests: 2})
		if err := m.RunGrading(bg, shill.ModeAmbient); err != nil {
			t.Fatal(err)
		}
		return m.GradeFor("student000") + m.GradeFor("student001") + m.GradeFor("student002")
	}
	if run(false) != run(true) {
		t.Fatal("module installation changed unsandboxed behaviour")
	}
}

// TestDebugWorkflow reproduces the §4.1 debugging story: run ocamlc in a
// debug sandbox with too few capabilities, read the auto-grant log, and
// find the /usr/local/lib/ocaml dependency the paper's authors found.
func TestDebugWorkflow(t *testing.T) {
	s := core.NewSystem(core.Config{InstallModule: true})
	t.Cleanup(s.Close)
	if _, err := s.K.FS.WriteFile("/home/user/main.ml", []byte("print hi\n"), 0o644, core.UserUID, core.UserUID); err != nil {
		t.Fatal(err)
	}
	exe := cap.NewFile(s.Runtime, s.K.FS.MustResolve("/usr/bin/ocamlc"), stdlib.ExecGrant)
	src := cap.NewFile(s.Runtime, s.K.FS.MustResolve("/home/user/main.ml"), stdlib.ReadOnlyFileGrant)
	home := cap.NewDir(s.Runtime, s.K.FS.MustResolve("/home/user"), priv.FullGrant())
	res, err := sandbox.Exec(s.Runtime, exe,
		[]sandbox.Arg{sandbox.StrArg("-o"), sandbox.StrArg("/home/user/main.byte"), sandbox.CapArg(src)},
		sandbox.Options{Debug: true, Extras: []*cap.Capability{home}})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("debug ocamlc = %d, %v", res.ExitCode, err)
	}
	found := false
	for _, e := range res.Session.Log().AutoGrants() {
		if strings.Contains(e.Object, "ocaml") || strings.Contains(e.Object, "stdlib.cma") {
			found = true
		}
	}
	if !found {
		t.Fatalf("debug log does not reveal the OCaml stdlib dependency: %v",
			res.Session.Log().AutoGrants())
	}
}
