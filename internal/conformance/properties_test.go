package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/kernel"
	"repro/internal/priv"
)

// TestMACNeverWeakensDAC is the §2.3 conjunction property: "an operation
// on a resource by a sandboxed execution is permitted only if it passes
// the checks performed by the operating system based on the user's
// ambient authority and is also permitted by the capabilities possessed
// by the sandbox." Whatever a sandbox is granted, it can never do
// anything the same user could not do ambiently.
func TestMACNeverWeakensDAC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := core.NewSystem(core.Config{InstallModule: true})
	t.Cleanup(s.Close)

	// A mix of files with varied ownership and modes.
	paths := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		uid := []int{0, core.UserUID, 2222}[i%3]
		mode := []uint16{0o600, 0o640, 0o644, 0o444, 0o200, 0o000}[i%6]
		path := fmt.Sprintf("/mix/f%02d", i)
		if _, err := s.K.FS.WriteFile(path, []byte("x"), mode, uid, uid); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	ambient := s.K.NewProc(core.UserUID, core.UserUID)
	for trial := 0; trial < 60; trial++ {
		path := paths[rng.Intn(len(paths))]
		flags := []kernel.OpenFlags{kernel.ORead, kernel.OWrite, kernel.ORead | kernel.OWrite}[rng.Intn(3)]

		// Sandbox with generous grants (full privileges on everything).
		sb, err := ambient.Fork()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sb.ShillInit(kernel.SessionOptions{}); err != nil {
			t.Fatal(err)
		}
		for _, dir := range []string{"/", "/mix"} {
			if err := sb.ShillGrant(s.K.FS.MustResolve(dir), priv.FullGrant()); err != nil {
				t.Fatal(err)
			}
		}
		if err := sb.ShillGrant(s.K.FS.MustResolve(path), priv.FullGrant()); err != nil {
			t.Fatal(err)
		}
		if err := sb.ShillEnter(); err != nil {
			t.Fatal(err)
		}

		_, ambientErr := ambient.OpenAt(kernel.AtCWD, path, flags, 0)
		_, sandboxErr := sb.OpenAt(kernel.AtCWD, path, flags, 0)
		if ambientErr != nil && sandboxErr == nil {
			t.Fatalf("sandbox opened %s (flags %v) that DAC denies ambiently (%v)",
				path, flags, ambientErr)
		}
		sb.Exit(0)
		ambient.Wait(sb.PID())
	}
}

// TestGrantlessSandboxCanDoNothing: with no grants at all, every
// filesystem path operation fails.
func TestGrantlessSandboxCanDoNothing(t *testing.T) {
	_, sb := sandboxedProc(t)
	ops := []func() error{
		func() error { _, err := sb.OpenAt(kernel.AtCWD, "/etc/passwd", kernel.ORead, 0); return err },
		func() error {
			_, err := sb.OpenAt(kernel.AtCWD, "/tmp/new", kernel.OCreate|kernel.OWrite, 0o644)
			return err
		},
		func() error { return sb.MkdirAt(kernel.AtCWD, "/tmp/d", 0o755) },
		func() error { return sb.UnlinkAt(kernel.AtCWD, "/etc/passwd", false) },
		func() error { _, err := sb.FStatAt(kernel.AtCWD, "/etc", true); return err },
		func() error { return sb.SymlinkAt("x", kernel.AtCWD, "/tmp/ln") },
		func() error { return sb.RenameAt(kernel.AtCWD, "/etc/passwd", kernel.AtCWD, "/etc/p2") },
	}
	for i, op := range ops {
		if err := op(); !errors.Is(err, errno.EACCES) {
			t.Errorf("op %d: err = %v, want EACCES", i, err)
		}
	}
}

// TestConcurrentSandboxesIsolated runs many sandboxes in parallel, each
// with a private directory, and checks no writes cross over — the
// integrity property behind per-student grading isolation, under
// concurrency.
func TestConcurrentSandboxesIsolated(t *testing.T) {
	s := core.NewSystem(core.Config{InstallModule: true})
	t.Cleanup(s.Close)
	s.K.RegisterBinary("stamper", func(p *kernel.Proc, argv []string) int {
		// Write the stamp into our own dir, then try to vandalise the
		// neighbour named in argv[2].
		fd, err := p.OpenAt(kernel.AtCWD, argv[1]+"/stamp", kernel.OCreate|kernel.OWrite, 0o644)
		if err != nil {
			return 1
		}
		p.Write(fd, []byte(argv[1]))
		p.Close(fd)
		if fd2, err := p.OpenAt(kernel.AtCWD, argv[2]+"/hacked", kernel.OCreate|kernel.OWrite, 0o644); err == nil {
			p.Close(fd2)
			return 2 // the vandalism succeeded: isolation broken
		}
		return 0
	})
	if _, err := s.K.FS.WriteFile("/bin/stamper", []byte("#!bin:stamper\n"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}

	const n = 12
	for i := 0; i < n; i++ {
		if _, err := s.K.FS.MkdirAll(fmt.Sprintf("/boxes/b%02d", i), 0o777, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			own := fmt.Sprintf("/boxes/b%02d", i)
			other := fmt.Sprintf("/boxes/b%02d", (i+1)%n)
			sb, err := s.Runtime.Fork()
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := sb.ShillInit(kernel.SessionOptions{}); err != nil {
				errs[i] = err
				return
			}
			grants := map[string]*priv.Grant{
				"/":            priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, &priv.Grant{}),
				"/boxes":       priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, &priv.Grant{}),
				"/bin":         priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, &priv.Grant{}),
				"/bin/stamper": priv.GrantOf(priv.ExecFile),
				own:            priv.FullGrant(),
			}
			for path, g := range grants {
				if err := sb.ShillGrant(s.K.FS.MustResolve(path), g); err != nil {
					errs[i] = err
					return
				}
			}
			if err := sb.ShillEnter(); err != nil {
				errs[i] = err
				return
			}
			code, err := sb.SpawnWait(s.K.FS.MustResolve("/bin/stamper"), []string{own, other}, kernel.SpawnAttr{})
			if err != nil {
				errs[i] = err
				return
			}
			if code != 0 {
				errs[i] = fmt.Errorf("stamper %d exit %d", i, code)
			}
			sb.Exit(0)
			s.Runtime.Wait(sb.PID())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("sandbox %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		own := fmt.Sprintf("/boxes/b%02d", i)
		if _, err := s.K.FS.Resolve(own + "/stamp"); err != nil {
			t.Errorf("missing stamp in %s", own)
		}
		if _, err := s.K.FS.Resolve(own + "/hacked"); err == nil {
			t.Errorf("cross-sandbox write into %s", own)
		}
	}
}
