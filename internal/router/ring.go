package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVNodes is how many virtual nodes each replica contributes to
// the ring. 128 points per member keeps the load split within a few
// percent of even for small fleets while keeping ring rebuilds (a sort
// of members×128 points) trivial.
const defaultVNodes = 128

// ring is a consistent-hash ring: tenants hash to points on a 64-bit
// circle, replicas contribute vnodes points each, and a tenant belongs
// to the first replica point at or after its own hash (wrapping). The
// property that matters: removing a member moves only the tenants that
// hashed to that member's points, and adding it back moves exactly
// those tenants home again — placement is stable under membership
// churn, which is what lets a rolling restart touch only the tenants
// of the replica being restarted.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// newRing builds a ring over members (replica base URLs); vnodes <= 0
// means defaultVNodes. An empty member list yields an empty ring whose
// lookup returns "".
func newRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on member so two rings built from the same set agree
		// even in the (astronomically unlikely) event of a hash collision.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// lookup returns the member owning key, or "" on an empty ring.
func (r *ring) lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point means the circle's first
	}
	return r.points[i].member
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, big-endian.
// Cryptographic dispersion matters more than speed here — lookups are
// per-request but on short keys, and a cheap hash with visible bias
// would skew tenant placement.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
