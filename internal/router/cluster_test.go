package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/server"
	"repro/internal/server/loadgen"
)

// End-to-end fleet behavior: a rolling restart under 64-client mixed
// load must lose zero requests and zero tenant state (the tentpole's
// acceptance), a hard-down replica's tenants must be reassigned and
// keep serving (cold), and replica answers the client is supposed to
// see — 429 backpressure with Retry-After, 413 body limits — must pass
// through the router byte-for-byte.

// Tenant state scripts: the load generator names tenants t0, t1, …,
// so these write/read a marker file in each such tenant's machine.
func writeStateScript(i int) string {
	return fmt.Sprintf(`#lang shill/ambient

home = open_dir("/home/user");
f = create_file(home, "state.txt");
append(f, "state-%d");
`, i)
}

func readStateScript() string {
	return `#lang shill/ambient

append(stdout, read(open_file("/home/user/state.txt")));
`
}

// routerRun posts one run through the router, retrying 429s.
func routerRun(t *testing.T, url string, req server.RunRequest) *server.RunResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(url+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var rr server.RunResponse
			if err := json.Unmarshal(data, &rr); err != nil {
				t.Fatalf("bad run response %s: %v", data, err)
			}
			return &rr
		}
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("tenant %s: status %d: %s", req.Tenant, resp.StatusCode, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func whyDenied(t *testing.T, url, tenant string) server.WhyDeniedResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/audit/why-denied?tenant=" + tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("why-denied(%s): status %d: %s", tenant, resp.StatusCode, body)
	}
	var wd server.WhyDeniedResponse
	if err := json.NewDecoder(resp.Body).Decode(&wd); err != nil {
		t.Fatal(err)
	}
	return wd
}

// victimFor picks a replica index that owns at least one of the given
// tenants (per the router's current placement) and returns the index
// plus one tenant it owns.
func victimFor(t *testing.T, c *Cluster, tenants []string) (int, string) {
	t.Helper()
	st := c.Router.State()
	for i, rep := range c.Replicas {
		for _, name := range tenants {
			if st.Tenants[name] == rep.URL {
				return i, name
			}
		}
	}
	t.Fatalf("no replica owns any of %v: %+v", tenants, st.Tenants)
	return 0, ""
}

func clusterConfig(i int, cfg *server.Config) {
	cfg.MaxMachines = 16
	cfg.MaxConcurrent = 32
	cfg.TenantConcurrent = 16
	cfg.MaxQueue = 256
}

// TestClusterRollingRestartZeroLoss is the failover acceptance test:
// 64 mixed closed-loop clients drive the router while one replica is
// gracefully drained mid-run. Zero requests may fail, every migrated
// tenant's machine state must survive the move, stats must settle, and
// why-denied must still resolve a denial recorded before the
// migration.
func TestClusterRollingRestartZeroLoss(t *testing.T) {
	c, err := StartCluster(3, clusterConfig, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed per-tenant state through the router (this also places every
	// tenant on the ring).
	const nTenants = 8
	tenants := make([]string, nTenants)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("t%d", i)
		if rr := routerRun(t, c.URL, server.RunRequest{Tenant: tenants[i], Script: writeStateScript(i)}); rr.ExitStatus != 0 {
			t.Fatalf("seed %s: %+v", tenants[i], rr)
		}
	}

	// A denial on a tenant owned by the replica we will drain, so the
	// migration has audit history to carry.
	victim, marked := victimFor(t, c, tenants)
	if rr := routerRun(t, c.URL, server.RunRequest{Tenant: marked, ScriptName: "why_denied.ambient"}); rr.ExitStatus == 0 {
		t.Fatalf("deny run on %s did not deny: %+v", marked, rr)
	}
	before := whyDenied(t, c.URL, marked)
	if len(before.Denials) == 0 {
		t.Fatalf("no pre-drain denials recorded for %s", marked)
	}
	firstSeq := before.Denials[0].Seq

	// Mixed load; drain the victim mid-run, exactly like a rolling
	// restart SIGTERMs one replica of a serving fleet.
	loadDone := make(chan *loadgen.Report, 1)
	loadErr := make(chan error, 1)
	go func() {
		rep, err := loadgen.Run(context.Background(), loadgen.Config{
			URL:      c.URL,
			Clients:  64,
			Duration: 2 * time.Second,
			Tenants:  nTenants,
		})
		loadErr <- err
		loadDone <- rep
	}()
	time.Sleep(400 * time.Millisecond)
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer dcancel()
	if err := c.Drain(dctx, victim); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if err := <-loadErr; err != nil {
		t.Fatal(err)
	}
	rep := <-loadDone
	t.Logf("load across drain: %d req (%.0f req/s), %d allowed / %d denied / %d canceled / %d rejected",
		rep.Requests, rep.ReqPerSec, rep.Allowed, rep.Denied, rep.Canceled, rep.Rejected)
	if rep.HTTPErrors != 0 {
		t.Fatalf("%d requests failed during the rolling restart, want 0", rep.HTTPErrors)
	}
	if bad := rep.Bad(); bad != 0 {
		t.Fatalf("%d malformed responses (badAllow=%d badDeny=%d badCancel=%d)",
			bad, rep.BadAllow, rep.BadDeny, rep.BadCancel)
	}
	if rep.Allowed == 0 || rep.Denied == 0 || rep.Canceled == 0 {
		t.Fatalf("mix did not exercise all kinds: %+v", rep)
	}

	// The router moved the victim's tenants, with their machine images.
	st := c.Router.State()
	if st.Migrations == 0 || st.WithState == 0 {
		t.Fatalf("drain caused no stateful migrations: %+v", st)
	}
	for name, owner := range st.Tenants {
		if owner == c.Replicas[victim].URL {
			t.Fatalf("tenant %s still routed to the drained replica", name)
		}
	}

	// Every tenant's pre-drain file state survives wherever it lives now.
	for i, name := range tenants {
		rr := routerRun(t, c.URL, server.RunRequest{Tenant: name, Script: readStateScript()})
		if want := fmt.Sprintf("state-%d", i); rr.ExitStatus != 0 || rr.Console != want {
			t.Fatalf("%s lost state across the restart: exit=%d console=%q want %q",
				name, rr.ExitStatus, rr.Console, want)
		}
	}

	// The pre-migration denial still resolves through the router, from
	// the tenant's new owner.
	after := whyDenied(t, c.URL, marked)
	var found bool
	for _, d := range after.Denials {
		if d.Seq == firstSeq && d.Layer == audit.LayerCapability {
			found = true
		}
	}
	if !found {
		t.Fatalf("pre-migration denial (seq %d) no longer resolves; got %d denials", firstSeq, len(after.Denials))
	}

	// The surviving replicas settle back to zero active sessions.
	settle := time.Now().Add(10 * time.Second)
	for {
		clean := true
		for i, rep := range c.Replicas {
			if i == victim {
				continue
			}
			for _, ms := range rep.Srv.MachineStats() {
				if ms.ActiveSessions != 0 {
					clean = false
				}
			}
		}
		if clean {
			break
		}
		if time.Now().After(settle) {
			t.Fatal("machines did not settle after the rolling restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterHardDownReassignsTenants covers the ungraceful case: a
// killed replica's tenants cannot carry state (there is nobody to pull
// it from), but they must keep serving from a cold machine on a new
// owner without the client seeing an error.
func TestClusterHardDownReassignsTenants(t *testing.T) {
	c, err := StartCluster(3, clusterConfig, Config{RetryBudget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for i, name := range tenants {
		if rr := routerRun(t, c.URL, server.RunRequest{Tenant: name, Script: writeStateScript(i)}); rr.ExitStatus != 0 {
			t.Fatalf("seed %s: %+v", name, rr)
		}
	}
	victim, stranded := victimFor(t, c, tenants)
	c.Kill(victim)

	// The stranded tenant's next run succeeds — the router notices the
	// dead owner at admission, reassigns, and the tenant boots cold.
	rr := routerRun(t, c.URL, server.RunRequest{Tenant: stranded, Script: "#lang shill/ambient\n\nappend(stdout, \"alive\\n\");\n"})
	if rr.ExitStatus != 0 || rr.Console != "alive\n" {
		t.Fatalf("stranded tenant %s cannot run after owner death: %+v", stranded, rr)
	}
	st := c.Router.State()
	if st.Tenants[stranded] == c.Replicas[victim].URL {
		t.Fatalf("tenant %s still routed to the dead replica", stranded)
	}
	if st.Migrations == 0 {
		t.Fatalf("no migration recorded after replica death: %+v", st)
	}
}

// TestRouterPassesBackpressureThrough pins the bugfix contract for
// replica answers the client must see unmodified: a replica's 429
// keeps its Retry-After header and body through the router.
func TestRouterPassesBackpressureThrough(t *testing.T) {
	// A stub replica that is healthy but refuses runs with backpressure.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"status":"ok"}`)
		case "/v1/run":
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":"too many concurrent runs"}`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	rt, err := New(Config{Replicas: []string{stub.URL}, HealthInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.WaitHealthy(ctx, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(front.URL+"/v1/run", "application/json", strings.NewReader(`{"tenant":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want %q (header must pass through)", ra, "7")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "too many concurrent runs") {
		t.Fatalf("429 body rewritten by the router: %s", body)
	}
}

// TestRouterPassesBodyLimit413Through drives an oversized run body
// through a real cluster: the replica's 413 (naming its own 1 MiB
// limit) must reach the client, not a router-flavoured error.
func TestRouterPassesBodyLimit413Through(t *testing.T) {
	c, err := StartCluster(1, clusterConfig, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	big, err := json.Marshal(server.RunRequest{
		Tenant: "alice",
		Script: "#lang shill/ambient\n# " + strings.Repeat("x", 1<<20) + "\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.URL+"/v1/run", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), fmt.Sprint(1<<20)) {
		t.Fatalf("413 body does not name the replica's limit: %s", body)
	}
}

// TestClusterMetricsFanIn checks the aggregated /metrics surface: the
// router's own series, every replica's series re-labelled with its
// address, and a replica="all" sum per series.
func TestClusterMetricsFanIn(t *testing.T) {
	c, err := StartCluster(2, clusterConfig, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if rr := routerRun(t, c.URL, server.RunRequest{Tenant: "t0", Script: "#lang shill/ambient\n\nappend(stdout, \"ok\\n\");\n"}); rr.ExitStatus != 0 {
		t.Fatalf("warm run: %+v", rr)
	}

	resp, err := http.Get(c.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"shill_router_requests_total",
		"shill_router_replica_up{replica=",
		`replica="all"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Each replica's serving metrics appear under its own label.
	for _, rep := range c.Replicas {
		label := fmt.Sprintf(`replica=%q`, strings.TrimPrefix(rep.URL, "http://"))
		if !strings.Contains(text, label) {
			t.Fatalf("/metrics has no series labelled %s", label)
		}
	}
}
