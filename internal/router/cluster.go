package router

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/server"
)

// Cluster is an in-process fleet — N shilld server engines on loopback
// listeners behind one Router — used by the cluster tests and the
// benchfig cluster figure. It exercises the same code a multi-process
// deployment runs (real TCP, real health probes, real migrations);
// only the process boundary is folded away.
type Cluster struct {
	Replicas []*ClusterReplica
	Router   *Router
	// URL is the router's base URL — point clients (loadgen included)
	// here.
	URL string

	routerSrv *http.Server
	routerLis net.Listener
}

// ClusterReplica is one in-process shilld.
type ClusterReplica struct {
	URL string
	Srv *server.Server

	httpSrv *http.Server
	lis     net.Listener
	stopped bool
}

// StartCluster boots n replicas and a router over them, waiting until
// every replica probes healthy. mut, when non-nil, adjusts each
// replica's server config before it starts (i is the replica index).
// rcfg adjusts the router config (Replicas is filled in here).
func StartCluster(n int, mut func(i int, cfg *server.Config), rcfg Config) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		cfg := server.Config{}
		if mut != nil {
			mut(i, &cfg)
		}
		rep, err := startReplica(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		c.Replicas = append(c.Replicas, rep)
		rcfg.Replicas = append(rcfg.Replicas, rep.URL)
	}
	if rcfg.HealthInterval <= 0 {
		rcfg.HealthInterval = 50 * time.Millisecond
	}
	rt, err := New(rcfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.Router = rt

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.routerLis = lis
	c.URL = "http://" + lis.Addr().String()
	c.routerSrv = &http.Server{Handler: rt.Handler()}
	go c.routerSrv.Serve(lis)
	rt.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.WaitHealthy(ctx, n); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func startReplica(cfg server.Config) (*ClusterReplica, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(cfg)
	rep := &ClusterReplica{
		URL:     "http://" + lis.Addr().String(),
		Srv:     srv,
		httpSrv: &http.Server{Handler: srv.Handler()},
		lis:     lis,
	}
	go rep.httpSrv.Serve(lis)
	return rep, nil
}

// Drain gracefully restarts-out replica i, exactly the way shilld
// handles SIGTERM with -handoff-grace: health flips to 503 so the
// router migrates the replica's tenants with their state, the replica
// waits (bounded by ctx) for every tenant to be exported, and only
// then stops its listener and closes its machines.
func (c *Cluster) Drain(ctx context.Context, i int) error {
	rep := c.Replicas[i]
	rep.Srv.StartDrain()
	rep.Srv.AwaitHandoff(ctx)
	rep.stopped = true
	if err := rep.httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	return rep.Srv.Drain(ctx)
}

// Kill drops replica i abruptly — no drain, no handoff: connections
// reset, machines close without snapshots. The hard-down case.
func (c *Cluster) Kill(i int) {
	rep := c.Replicas[i]
	rep.stopped = true
	rep.httpSrv.Close()
	rep.Srv.Close()
}

// Restart boots a fresh server engine for replica i on its old
// address, as a restarted shilld would come back after a rolling
// restart. The machine state it had before is gone (drained replicas
// handed it off; killed ones lost it) — it returns empty and the
// router migrates its canonical tenants back.
func (c *Cluster) Restart(i int, mut func(cfg *server.Config)) error {
	rep := c.Replicas[i]
	if !rep.stopped {
		return fmt.Errorf("replica %d is still running", i)
	}
	addr := rep.lis.Addr().String()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rebinding %s: %w", addr, err)
	}
	cfg := server.Config{}
	if mut != nil {
		mut(&cfg)
	}
	srv := server.New(cfg)
	rep.Srv = srv
	rep.httpSrv = &http.Server{Handler: srv.Handler()}
	rep.lis = lis
	rep.stopped = false
	go rep.httpSrv.Serve(lis)
	return nil
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	if c.Router != nil {
		c.Router.Close()
	}
	if c.routerSrv != nil {
		c.routerSrv.Close()
	}
	for _, rep := range c.Replicas {
		if !rep.stopped {
			rep.httpSrv.Close()
			rep.Srv.Close()
		}
	}
}
