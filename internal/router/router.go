package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// maxProxyBody bounds how much of a /v1/run body the router buffers
// for routing and retries. It is deliberately larger than shilld's own
// 1 MiB run-body limit: an oversized body must reach the replica so
// the client gets the replica's 413 (naming the limit) unmodified, not
// a router-flavoured error.
const maxProxyBody = 8 << 20

// Config tunes a Router; the zero value routes with the defaults noted
// on each field.
type Config struct {
	// Replicas are the shilld base URLs (e.g. http://127.0.0.1:8377)
	// forming the fleet. Required.
	Replicas []string
	// HealthInterval is the /healthz poll period. Default 250ms.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 2s.
	HealthTimeout time.Duration
	// RetryBudget is how long one /v1/run request keeps retrying across
	// replica failures before answering 502. Default 15s.
	RetryBudget time.Duration
	// RetryDelay is the pause between retries. Default 25ms.
	RetryDelay time.Duration
	// VNodes is each replica's virtual-node count on the ring; <= 0
	// means defaultVNodes (128).
	VNodes int
	// Client is the HTTP client used toward replicas; nil builds one
	// with sensible keep-alive settings.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 15 * time.Second
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 25 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	return c
}

// replState is one replica's health as the router sees it.
type replState int

const (
	// replUnknown is the state before the first probe answers; the
	// replica is not in the ring yet, but a probe is imminent.
	replUnknown replState = iota
	// replUp serves; in the ring.
	replUp
	// replDraining answered 503 on /healthz (a SIGTERM'd shilld): out
	// of the ring, but its admin surface still answers, so its tenants
	// migrate with their state.
	replDraining
	// replDown stopped answering: out of the ring, state unpullable;
	// its tenants are reassigned and boot cold.
	replDown
)

func (s replState) String() string {
	switch s {
	case replUp:
		return "up"
	case replDraining:
		return "draining"
	case replDown:
		return "down"
	default:
		return "unknown"
	}
}

// replica is one shilld process in the fleet.
type replica struct {
	url   string
	state replState // guarded by Router.mu
}

// tenantRoute is the router's placement record for one tenant. Its
// gate is the migration mechanism: while non-nil, requests for the
// tenant wait for it to close instead of racing the state transfer.
type tenantRoute struct {
	name  string
	owner string        // replica URL; guarded by Router.mu
	gate  chan struct{} // non-nil while migrating; closed when done
	// inflight counts router-held requests to this tenant; a migration
	// waits it out so the snapshot cannot miss an effect of a request
	// the router already forwarded.
	inflight sync.WaitGroup
}

// Router places tenants onto replicas and proxies the shilld surface.
// Create with New, call Start to begin health checking, serve Handler,
// stop with Close.
type Router struct {
	cfg    Config
	client *http.Client

	mu       sync.Mutex
	replicas map[string]*replica
	order    []string // replica URLs in configured order (stable display)
	ring     *ring    // over replUp members only
	tenants  map[string]*tenantRoute

	met routerMetrics

	kick chan struct{} // nudges the health loop out of its sleep
	stop chan struct{}
	done chan struct{}
}

// New builds a router over the configured replicas. No probes run
// until Start.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	r := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		tenants:  make(map[string]*tenantRoute),
		ring:     newRing(nil, cfg.VNodes),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, u := range cfg.Replicas {
		u = strings.TrimRight(u, "/")
		if _, dup := r.replicas[u]; dup {
			return nil, fmt.Errorf("router: duplicate replica %s", u)
		}
		r.replicas[u] = &replica{url: u}
		r.order = append(r.order, u)
	}
	return r, nil
}

// Start launches the health loop (an immediate sweep, then periodic).
func (r *Router) Start() {
	go r.healthLoop()
}

// Close stops the health loop. In-flight proxied requests finish on
// their own; the router holds no tenant state to drain.
func (r *Router) Close() {
	close(r.stop)
	<-r.done
}

// Handler returns the router's HTTP surface: the shilld tenant surface
// proxied by ownership, plus the router's own health/state/metrics.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", r.handleRun)
	mux.HandleFunc("GET /v1/audit/why-denied", r.handleFederated)
	mux.HandleFunc("GET /v1/trace", r.handleFederated)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /v1/router/state", r.handleState)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// handleRun proxies POST /v1/run to the tenant's owner. Replica
// answers — 200 results, 429 + Retry-After backpressure, 413 body
// limits — pass through byte-for-byte. Transport failures and
// drain refusals are retried against the tenant's (possibly migrated)
// owner within the retry budget, so a rolling restart under load
// surfaces as latency, not failures.
func (r *Router) handleRun(w http.ResponseWriter, req *http.Request) {
	r.met.requests.Add(1)
	body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "reading request body: " + err.Error()})
		return
	}
	// Routing needs only the tenant name; a body the replica would
	// reject (bad JSON, missing tenant) is still forwarded so the
	// client gets the replica's own diagnostic.
	var peek struct {
		Tenant string `json:"tenant"`
	}
	json.Unmarshal(body, &peek)

	deadline := time.Now().Add(r.cfg.RetryBudget)
	for {
		tr, owner, err := r.admit(req.Context(), peek.Tenant)
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
			return
		}
		resp, err := r.forward(req, owner, body)
		if err == nil && !isDrainRefusal(resp) {
			// The tenant's inflight count covers the body copy: the
			// replica's handler has returned by the time the body ends,
			// so a migration that waited us out snapshots every effect
			// of this run.
			relayResponse(w, resp)
			tr.inflight.Done()
			return
		}
		// The owner refused (draining) or the transport failed. Release
		// the tenant before sleeping — a migration must be able to start
		// while we wait — nudge the health loop so the failure is seen
		// now rather than at the next sweep, and retry against whatever
		// owner the tenant has after the dust settles.
		if err == nil {
			resp.Body.Close()
			r.noteUnhealthy(owner, replDraining)
		} else {
			r.noteUnhealthy(owner, replDown)
		}
		tr.inflight.Done()
		r.met.retries.Add(1)
		if time.Now().After(deadline) {
			writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("no replica could serve the run within %v", r.cfg.RetryBudget)})
			return
		}
		select {
		case <-req.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "canceled while retrying: " + req.Context().Err().Error()})
			return
		case <-time.After(r.cfg.RetryDelay):
		}
	}
}

// handleFederated proxies a tenant-scoped read (why-denied, trace) to
// the tenant's owner, waiting out any migration first so the answer
// comes from wherever the tenant's state actually is.
func (r *Router) handleFederated(w http.ResponseWriter, req *http.Request) {
	tenant := req.URL.Query().Get("tenant")
	tr, owner, err := r.admit(req.Context(), tenant)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	defer tr.inflight.Done()
	resp, err := r.forward(req, owner, nil)
	if err != nil {
		r.noteUnhealthy(owner, replDown)
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: "replica unreachable: " + err.Error()})
		return
	}
	relayResponse(w, resp)
}

// admit resolves the tenant's owner, waiting out migration gates, and
// joins the tenant's inflight group (the caller must Done). A tenant
// whose owner has left the ring is migrated here and now — admission
// is what notices a dead owner between health sweeps. An empty tenant
// name routes to any healthy replica (the replica will answer with its
// own validation error).
func (r *Router) admit(ctx context.Context, tenant string) (*tenantRoute, string, error) {
	for {
		r.mu.Lock()
		if tenant == "" {
			owner := r.ring.lookup("")
			r.mu.Unlock()
			if owner == "" {
				return nil, "", errors.New("no healthy replica")
			}
			tr := &tenantRoute{} // placement-free: nothing to migrate
			tr.inflight.Add(1)
			return tr, owner, nil
		}
		tr := r.tenants[tenant]
		if tr == nil {
			owner := r.ring.lookup(tenant)
			if owner == "" {
				r.mu.Unlock()
				if err := r.waitKicked(ctx); err != nil {
					return nil, "", errors.New("no healthy replica")
				}
				continue
			}
			tr = &tenantRoute{name: tenant, owner: owner}
			r.tenants[tenant] = tr
			tr.inflight.Add(1)
			r.mu.Unlock()
			return tr, owner, nil
		}
		if tr.gate != nil {
			g := tr.gate
			r.mu.Unlock()
			select {
			case <-g:
				continue
			case <-ctx.Done():
				return nil, "", errors.New("canceled while tenant was migrating: " + ctx.Err().Error())
			}
		}
		owner := tr.owner
		st := replUnknown
		if rep := r.replicas[owner]; rep != nil {
			st = rep.state
		}
		if st == replUp {
			tr.inflight.Add(1)
			r.mu.Unlock()
			return tr, owner, nil
		}
		r.mu.Unlock()
		// The owner is out of the ring: move the tenant rather than wait
		// for the health loop to get around to it. migrateTenant is
		// idempotent — concurrent admitters and the health loop can all
		// call it; one does the work, the rest find the gate or the new
		// owner.
		r.migrateTenant(tenant, owner, st != replDown)
		if err := ctx.Err(); err != nil {
			return nil, "", errors.New("canceled while tenant was migrating: " + err.Error())
		}
	}
}

// waitKicked sleeps until the health loop reports progress (or a
// retry-delay passes) — used when no replica is healthy yet.
func (r *Router) waitKicked(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(r.cfg.RetryDelay):
		return nil
	}
}

// forward re-issues req against owner; body non-nil replaces the
// request body (run requests, which the router buffered for retries).
func (r *Router) forward(req *http.Request, owner string, body []byte) (*http.Response, error) {
	url := owner + req.URL.Path
	if req.URL.RawQuery != "" {
		url += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, url, rd)
	if err != nil {
		return nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	return r.client.Do(out)
}

// relayResponse copies a replica's answer to the client unmodified —
// status, headers (Retry-After included), and body, flushing per chunk
// so streamed NDJSON runs stream through the router too.
func relayResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// isDrainRefusal reports a 503 that means "this replica is draining" —
// the signal to migrate and retry, as opposed to a 503 the replica
// produced for this request's own reasons (those pass through).
func isDrainRefusal(resp *http.Response) bool {
	if resp.StatusCode != http.StatusServiceUnavailable {
		return false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if err != nil {
		return true
	}
	// Replace the consumed body so a caller that decides to relay the
	// response anyway still has it.
	resp.Body = io.NopCloser(strings.NewReader(string(body)))
	return strings.Contains(string(body), "draining")
}

// handleHealthz answers 200 while at least one replica serves.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	st := r.State()
	status := http.StatusOK
	if st.Up == 0 {
		st.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, st)
}

// ReplicaState is one replica's row in the router's state report.
type ReplicaState struct {
	URL     string `json:"url"`
	State   string `json:"state"`
	Tenants int    `json:"tenants"`
}

// State is the router's placement report (GET /v1/router/state).
type State struct {
	Status   string            `json:"status"`
	Up       int               `json:"up"`
	Replicas []ReplicaState    `json:"replicas"`
	Tenants  map[string]string `json:"tenants"` // tenant -> owner URL
	// Migrations counts completed tenant moves; WithState how many
	// carried a machine image (the rest booted cold on the new owner).
	Migrations int64 `json:"migrations"`
	WithState  int64 `json:"withState"`
}

// State snapshots replica health and tenant placement.
func (r *Router) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := State{
		Status:     "ok",
		Tenants:    make(map[string]string, len(r.tenants)),
		Migrations: r.met.migrations.Load(),
		WithState:  r.met.migrationsWithState.Load(),
	}
	perOwner := map[string]int{}
	for name, tr := range r.tenants {
		st.Tenants[name] = tr.owner
		perOwner[tr.owner]++
	}
	for _, u := range r.order {
		rep := r.replicas[u]
		if rep.state == replUp {
			st.Up++
		}
		st.Replicas = append(st.Replicas, ReplicaState{
			URL: u, State: rep.state.String(), Tenants: perOwner[u],
		})
	}
	return st
}

func (r *Router) handleState(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.State())
}

// WaitHealthy blocks until n replicas are up (cluster startup).
func (r *Router) WaitHealthy(ctx context.Context, n int) error {
	for {
		if r.State().Up >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for %d healthy replicas: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Owners returns the healthy replica URLs in configured order — the
// metrics fan-in set.
func (r *Router) upAndDraining() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, u := range r.order {
		if st := r.replicas[u].state; st == replUp || st == replDraining {
			out = append(out, u)
		}
	}
	return out
}

// sortedTenants returns tenant names in stable order (migration sweeps).
func (r *Router) sortedTenants() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
