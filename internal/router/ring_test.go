package router

import (
	"fmt"
	"testing"
)

// The ring's two load-bearing properties: removing a member strands
// only that member's tenants (everyone else keeps their owner — no
// gratuitous migrations on membership change), and placement spreads
// tenants roughly evenly so replicas share the fleet's load.

func ringMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("http://replica-%d:8377", i)
	}
	return m
}

func tenantNames(n int) []string {
	t := make([]string, n)
	for i := range t {
		t[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return t
}

func TestRingStableUnderMemberRemoval(t *testing.T) {
	members := ringMembers(4)
	full := newRing(members, defaultVNodes)
	reduced := newRing(members[:3], defaultVNodes) // replica-3 leaves

	moved := 0
	for _, name := range tenantNames(2000) {
		before := full.lookup(name)
		after := reduced.lookup(name)
		if before == members[3] {
			if after == members[3] {
				t.Fatalf("%s still maps to the removed member", name)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("%s moved from %s to %s though its owner never left", name, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no tenants — distribution is broken")
	}

	// Re-adding the member restores the original placement exactly: the
	// ring is a pure function of the membership set, which is what lets
	// the router migrate tenants home after a rolling restart.
	restored := newRing(members, defaultVNodes)
	for _, name := range tenantNames(2000) {
		if restored.lookup(name) != full.lookup(name) {
			t.Fatalf("%s did not return to its original owner after re-add", name)
		}
	}
}

func TestRingDistributionRoughlyEven(t *testing.T) {
	members := ringMembers(4)
	r := newRing(members, defaultVNodes)
	counts := map[string]int{}
	const n = 4000
	for _, name := range tenantNames(n) {
		counts[r.lookup(name)]++
	}
	// With 128 vnodes per member the spread is tight; allow a wide 2x
	// band so the test pins "roughly even", not a hash constant.
	want := n / len(members)
	for _, m := range members {
		if counts[m] < want/2 || counts[m] > want*2 {
			t.Fatalf("member %s owns %d of %d tenants (expected near %d): %v", m, counts[m], n, want, counts)
		}
	}
}

func TestRingLookupDeterministic(t *testing.T) {
	r := newRing(ringMembers(3), defaultVNodes)
	for _, name := range []string{"", "alice", "tenant-0001"} {
		if a, b := r.lookup(name), r.lookup(name); a != b {
			t.Fatalf("lookup(%q) unstable: %s then %s", name, a, b)
		}
	}
}
