package router

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// routerMetrics is the router's own accounting, exposed ahead of the
// replica fan-in on GET /metrics.
type routerMetrics struct {
	requests            atomic.Int64 // /v1/run requests received
	retries             atomic.Int64 // forwards retried after a replica failure
	migrations          atomic.Int64 // tenant moves completed
	migrationsWithState atomic.Int64 // moves that carried a machine image
	migrationFailures   atomic.Int64 // state transfers that fell back to a cold boot
}

// handleMetrics serves the fleet's metrics as one scrape: the router's
// shill_router_* series, then every reachable replica's families with
// a replica="host:port" label injected on each sample, plus a
// replica="all" sample per series summing the fleet (counters, gauges,
// and histogram buckets all sum meaningfully across replicas; averages
// of averages are the caller's mistake to avoid).
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("shill_router_requests_total", "run requests received by the router", r.met.requests.Load())
	counter("shill_router_retries_total", "run forwards retried after a replica refused or failed", r.met.retries.Load())
	counter("shill_router_migrations_total", "tenant migrations completed", r.met.migrations.Load())
	counter("shill_router_migrations_with_state_total", "tenant migrations that carried a machine image to the new owner", r.met.migrationsWithState.Load())
	counter("shill_router_migration_failures_total", "state transfers that failed (the tenant booted cold instead)", r.met.migrationFailures.Load())

	st := r.State()
	fmt.Fprintf(w, "# HELP shill_router_replica_up replica health as the router sees it (1 up, 0 otherwise)\n# TYPE shill_router_replica_up gauge\n")
	for _, rs := range st.Replicas {
		up := 0
		if rs.State == "up" {
			up = 1
		}
		fmt.Fprintf(w, "shill_router_replica_up{replica=%q} %d\n", hostOf(rs.URL), up)
	}
	fmt.Fprintf(w, "# HELP shill_router_tenants placed tenants per replica\n# TYPE shill_router_tenants gauge\n")
	for _, rs := range st.Replicas {
		fmt.Fprintf(w, "shill_router_tenants{replica=%q} %d\n", hostOf(rs.URL), rs.Tenants)
	}

	fanInMetrics(req.Context(), w, r.client, r.upAndDraining())
}

// hostOf strips the scheme off a replica base URL for label values.
func hostOf(base string) string {
	if u, err := url.Parse(base); err == nil && u.Host != "" {
		return u.Host
	}
	return base
}

// scrapedFamily is one metric family re-assembled from the replicas'
// expositions, keeping the order things appeared in.
type scrapedFamily struct {
	name    string
	header  []string // the family's # HELP / # TYPE lines, first seen
	samples []scrapedSample
	// agg sums each series (labels minus replica) across replicas.
	agg     map[string]float64
	aggKeys []string
}

type scrapedSample struct {
	replica string
	labels  string // original label block without braces ("" if none)
	value   float64
}

// fanInMetrics scrapes each replica's /metrics concurrently and writes
// the merged exposition: per family, HELP/TYPE once, every replica's
// samples with the replica label injected first, then replica="all"
// sums.
func fanInMetrics(ctx context.Context, w io.Writer, client *http.Client, replicas []string) {
	type scrape struct {
		url  string
		text string
	}
	results := make([]scrape, len(replicas))
	var wg sync.WaitGroup
	for i, u := range replicas {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			results[i] = scrape{url: u, text: fetchMetrics(ctx, client, u)}
		}(i, u)
	}
	wg.Wait()

	var order []string
	families := map[string]*scrapedFamily{}
	for _, sc := range results {
		if sc.text == "" {
			continue
		}
		mergeExposition(sc.text, hostOf(sc.url), families, &order)
	}
	for _, name := range order {
		f := families[name]
		for _, h := range f.header {
			fmt.Fprintln(w, h)
		}
		for _, s := range f.samples {
			fmt.Fprintf(w, "%s{%s} %s\n", f.name, injectReplica(s.labels, s.replica), formatValue(s.value))
		}
		for _, k := range f.aggKeys {
			fmt.Fprintf(w, "%s{%s} %s\n", f.name, injectReplica(k, "all"), formatValue(f.agg[k]))
		}
	}
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) string {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/metrics", nil)
	if err != nil {
		return ""
	}
	resp, err := client.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return ""
	}
	return string(data)
}

// mergeExposition folds one replica's exposition text into families.
func mergeExposition(text, replica string, families map[string]*scrapedFamily, order *[]string) {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# HELP name ..." / "# TYPE name ...": attach to the family
			// (creating it so headers precede samples even for empty
			// families).
			fields := strings.Fields(line)
			if len(fields) < 3 {
				continue
			}
			f := getFamily(families, order, fields[2])
			if len(f.header) < 2 { // first replica's HELP+TYPE only
				f.header = append(f.header, line)
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			continue
		}
		// Histogram sample suffixes (_bucket/_sum/_count) belong to
		// their base family in exposition order; treat each full sample
		// name as its own family for output purposes, keyed after the
		// header-declared family when the names match a suffix.
		f := getFamily(families, order, name)
		f.samples = append(f.samples, scrapedSample{replica: replica, labels: labels, value: value})
		if f.agg == nil {
			f.agg = map[string]float64{}
		}
		if _, seen := f.agg[labels]; !seen {
			f.aggKeys = append(f.aggKeys, labels)
		}
		f.agg[labels] += value
	}
}

func getFamily(families map[string]*scrapedFamily, order *[]string, name string) *scrapedFamily {
	if f := families[name]; f != nil {
		return f
	}
	f := &scrapedFamily{name: name}
	families[name] = f
	*order = append(*order, name)
	return f
}

// parseSample splits `name{labels} value` (or `name value`) without
// interpreting the labels — they are re-emitted verbatim with the
// replica label prepended.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := strings.IndexByte(line, '}')
		if end < i {
			return "", "", 0, false
		}
		name = line[:i]
		labels = line[i+1 : end]
		rest = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", "", 0, false
		}
		name = line[:sp]
		rest = strings.TrimSpace(line[sp:])
	}
	// A sample can carry a trailing timestamp; the value is the first
	// field after the name/labels.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", 0, false
	}
	return name, labels, v, true
}

func injectReplica(labels, replica string) string {
	if labels == "" {
		return fmt.Sprintf("replica=%q", replica)
	}
	return fmt.Sprintf("replica=%q,%s", replica, labels)
}

// formatValue renders integers without an exponent and everything else
// the way strconv shortest-round-trips it.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
