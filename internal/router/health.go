package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/audit"
)

// healthLoop probes every replica each interval, rebuilds the ring on
// membership change, and migrates tenants off replicas that left it.
// Proxy paths nudge it through r.kick when they see a failure first —
// a drain should start evacuating on the request that noticed it, not
// up to an interval later.
func (r *Router) healthLoop() {
	defer close(r.done)
	for {
		changed := r.sweep()
		if changed {
			r.rebalance()
		}
		select {
		case <-r.stop:
			return
		case <-r.kick:
		case <-time.After(r.cfg.HealthInterval):
		}
	}
}

// sweep probes every replica once and returns whether any state
// changed (the ring is rebuilt here, under the same lock that changes
// the states, so lookups never see a half-updated view).
func (r *Router) sweep() bool {
	type probe struct {
		url   string
		state replState
	}
	results := make(chan probe, len(r.order))
	for _, u := range r.order {
		go func(u string) {
			results <- probe{url: u, state: r.probe(u)}
		}(u)
	}
	changed := false
	r.mu.Lock()
	for range r.order {
		p := <-results
		rep := r.replicas[p.url]
		if rep.state != p.state {
			if rep.state != replUnknown || p.state != replUp {
				log.Printf("shill-router: replica %s: %s -> %s", p.url, rep.state, p.state)
			}
			rep.state = p.state
			changed = true
		}
	}
	if changed {
		var up []string
		for _, u := range r.order {
			if r.replicas[u].state == replUp {
				up = append(up, u)
			}
		}
		r.ring = newRing(up, r.cfg.VNodes)
	}
	r.mu.Unlock()
	return changed
}

// probe classifies one replica: 200 is up, 503 is draining (shilld's
// /healthz while SIGTERM'd), anything else — including no answer — is
// down.
func (r *Router) probe(url string) replState {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/healthz", nil)
	if err != nil {
		return replDown
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return replDown
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return replUp
	case http.StatusServiceUnavailable:
		return replDraining
	default:
		return replDown
	}
}

// noteUnhealthy downgrades a replica the proxy path caught failing —
// without waiting for the next sweep to notice — and kicks the health
// loop to confirm and rebalance. Upgrades only come from real probes.
func (r *Router) noteUnhealthy(url string, state replState) {
	r.mu.Lock()
	rep := r.replicas[url]
	if rep != nil && rep.state == replUp {
		log.Printf("shill-router: replica %s: up -> %s (seen on proxy path)", url, state)
		rep.state = state
		var up []string
		for _, u := range r.order {
			if r.replicas[u].state == replUp {
				up = append(up, u)
			}
		}
		r.ring = newRing(up, r.cfg.VNodes)
	}
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// rebalance moves every tenant whose owner no longer matches the ring:
// tenants of departed replicas (drained or dead) get a new owner, and
// tenants displaced earlier migrate home when their canonical replica
// returns. Consistent hashing keeps this set minimal — only tenants
// whose placement actually changed move.
func (r *Router) rebalance() {
	for _, name := range r.sortedTenants() {
		r.mu.Lock()
		tr := r.tenants[name]
		if tr == nil || tr.gate != nil {
			r.mu.Unlock()
			continue
		}
		owner := tr.owner
		want := r.ring.lookup(name)
		var ownerState replState
		if rep := r.replicas[owner]; rep != nil {
			ownerState = rep.state
		}
		r.mu.Unlock()
		if want == "" || want == owner {
			continue
		}
		r.migrateTenant(name, owner, ownerState != replDown)
	}
}

// migrateTenant moves one tenant from its current owner to the ring's
// choice: gate the tenant's requests, wait out the ones already
// forwarded, pull the tenant's state off the old owner when it can
// still answer (snapshot with evict — the export atomically ends the
// old owner's custody), seed the new owner with the image and the
// denial history, then reopen the gate. Idempotent and safe to race:
// callers that lose the gate just find the tenant already moved.
func (r *Router) migrateTenant(name, from string, canPull bool) {
	r.mu.Lock()
	tr := r.tenants[name]
	if tr == nil || tr.owner != from || tr.gate != nil {
		r.mu.Unlock()
		return
	}
	dest := r.ring.lookup(name)
	if dest == "" || dest == from {
		// Nowhere to go (no healthy replica): leave the tenant where it
		// is; admit keeps waiting and will re-trigger when the ring has
		// members again.
		r.mu.Unlock()
		return
	}
	gate := make(chan struct{})
	tr.gate = gate
	r.mu.Unlock()

	// Requests the router already forwarded must finish before the
	// pull: the snapshot has to include their effects. (Retrying
	// requests Done() before they sleep, so a dead owner can't wedge
	// this wait.)
	tr.inflight.Wait()

	moved := false
	if canPull {
		moved = r.pullAndSeed(name, from, dest)
	}
	r.mu.Lock()
	tr.owner = dest
	tr.gate = nil
	r.mu.Unlock()
	close(gate)
	r.met.migrations.Add(1)
	if moved {
		r.met.migrationsWithState.Add(1)
	}
	log.Printf("shill-router: tenant %q migrated %s -> %s (state=%v)", name, from, dest, moved)
}

// pullAndSeed transfers one tenant's state: denial history first (the
// evicting snapshot tears down the machine the history lives on), then
// the machine image, pushed to the destination in the reverse order.
// Returns whether an image made it across. Every step tolerates "no
// such state" — a tenant that never ran has nothing to move, and the
// migration still succeeds (as a cold reassignment).
func (r *Router) pullAndSeed(name, from, dest string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	denials := r.pullDenials(ctx, from, name)
	img := r.pullImage(ctx, from, name)
	if img == nil && denials == nil {
		return false
	}
	moved := false
	if img != nil {
		if err := r.push(ctx, dest, "/v1/admin/restore?tenant="+name, "application/x-shill-image", img); err != nil {
			log.Printf("shill-router: seeding tenant %q on %s: %v (tenant boots cold)", name, dest, err)
			r.met.migrationFailures.Add(1)
		} else {
			moved = true
		}
	}
	if denials != nil {
		body, err := json.Marshal(denials)
		if err == nil {
			err = r.push(ctx, dest, "/v1/admin/denials?tenant="+name, "application/json", body)
		}
		if err != nil {
			log.Printf("shill-router: carrying tenant %q denial history to %s: %v", name, dest, err)
		}
	}
	return moved
}

// pullDenials fetches the old owner's full why-denied answer for the
// tenant; nil when there is none (or the owner can no longer say).
func (r *Router) pullDenials(ctx context.Context, from, name string) []audit.Explanation {
	req, err := http.NewRequestWithContext(ctx, "GET", from+"/v1/audit/why-denied?tenant="+name, nil)
	if err != nil {
		return nil
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var wd struct {
		Denials []audit.Explanation `json:"denials"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&wd); err != nil {
		return nil
	}
	if len(wd.Denials) == 0 {
		return nil
	}
	return wd.Denials
}

// pullImage exports (and evicts) the tenant's machine image from the
// old owner; nil when the tenant holds no state there.
func (r *Router) pullImage(ctx context.Context, from, name string) []byte {
	req, err := http.NewRequestWithContext(ctx, "GET", from+"/v1/admin/snapshot?tenant="+name+"&evict=1", nil)
	if err != nil {
		return nil
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode != http.StatusNotFound {
			log.Printf("shill-router: snapshot of tenant %q from %s: %s", name, from, resp.Status)
			r.met.migrationFailures.Add(1)
		}
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		log.Printf("shill-router: reading tenant %q image from %s: %v", name, from, err)
		r.met.migrationFailures.Add(1)
		return nil
	}
	return data
}

func (r *Router) push(ctx context.Context, dest, path, contentType string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, "POST", dest+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
