// Package router is the shill-router engine: a reverse proxy that
// serves one logical shilld out of N replica processes without giving
// up the thing shilld exists for — every tenant's state (files,
// installed scripts, audit history) lives on exactly one machine at a
// time, so placement is an invariant, not a load-balancing detail.
//
// Placement is a consistent-hash ring over the healthy replicas
// (virtual nodes, so membership changes move only the tenants of the
// replicas that actually left). Every request that names a tenant —
// POST /v1/run, GET /v1/audit/why-denied, GET /v1/trace — is forwarded
// to the tenant's owner; replica answers pass through unmodified, so
// backpressure (429 + Retry-After) and limits (413) reach the client
// exactly as the replica shaped them.
//
// The router health-checks each replica's /healthz. A replica that
// turns 503 (a SIGTERM'd shilld draining) or stops answering is taken
// out of the ring, and every tenant it owned is migrated: the tenant's
// requests are gated, the router pulls the tenant's machine image off
// the draining replica (GET /v1/admin/snapshot?evict=1 — the export
// also evicts, so a stale copy can never resurrect) along with its
// denial history, seeds both onto the tenant's new owner
// (POST /v1/admin/restore, POST /v1/admin/denials), and reopens the
// gate. A rolling restart under load therefore loses zero requests and
// zero tenant state, and why-denied still explains a migrated tenant's
// pre-migration denials. A replica that dies without draining is
// handled the same way minus the pull: its tenants are reassigned and
// boot cold on the new owner (that state loss is the difference a
// graceful drain exists to avoid).
//
// GET /metrics fans in every replica's metrics (per-replica samples
// labelled replica="host:port", plus replica="all" sums) behind the
// router's own shill_router_* series; GET /v1/router/state reports the
// ring, replica health, and tenant placement.
package router
