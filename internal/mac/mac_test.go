package mac

import (
	"errors"
	"testing"
)

type obj struct{ label Label }

func (o *obj) MACLabel() *Label { return &o.label }

func TestLabelSlots(t *testing.T) {
	var l Label
	if l.Get("p") != nil {
		t.Fatal("empty label returned a value")
	}
	l.Set("p", 42)
	if l.Get("p") != 42 {
		t.Fatal("Set/Get broken")
	}
	l.Set("q", "other")
	if l.Get("p") != 42 || l.Get("q") != "other" {
		t.Fatal("slots interfere")
	}
	calls := 0
	v := l.GetOrInit("r", func() any { calls++; return "init" })
	v2 := l.GetOrInit("r", func() any { calls++; return "again" })
	if v != "init" || v2 != "init" || calls != 1 {
		t.Fatalf("GetOrInit: %v, %v, %d calls", v, v2, calls)
	}
}

func TestCredForkSharesPolicyState(t *testing.T) {
	c := NewCred(1000, 1000)
	shared := &struct{ x int }{7}
	c.MACLabel().Set("pol", shared)
	child := c.Fork()
	if child.UID != 1000 {
		t.Fatal("identity lost")
	}
	if child.MACLabel().Get("pol") != shared {
		t.Fatal("policy state not shared across fork")
	}
	// But the slot maps are independent.
	child.MACLabel().Set("pol", nil)
	if c.MACLabel().Get("pol") != shared {
		t.Fatal("child slot write leaked to parent")
	}
}

type countPolicy struct {
	BasePolicy
	name   string
	deny   bool
	checks int
	posts  int
}

func (p *countPolicy) Name() string { return p.name }
func (p *countPolicy) VnodeCheck(*Cred, Labeled, VnodeOp, string) error {
	p.checks++
	if p.deny {
		return errors.New("denied by " + p.name)
	}
	return nil
}
func (p *countPolicy) VnodePostLookup(*Cred, Labeled, Labeled, string) { p.posts++ }

func TestFrameworkComposition(t *testing.T) {
	f := NewFramework()
	a := &countPolicy{name: "a"}
	b := &countPolicy{name: "b", deny: true}
	if err := f.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Register(&countPolicy{name: "a"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	cred := NewCred(0, 0)
	o := &obj{}
	// Any policy's denial denies.
	if err := f.VnodeCheck(cred, o, OpVnodeRead, ""); err == nil {
		t.Fatal("composed check passed despite denial")
	}
	if a.checks != 1 || b.checks != 1 {
		t.Fatalf("checks = %d, %d", a.checks, b.checks)
	}
	// Post hooks reach every policy.
	f.VnodePostLookup(cred, o, o, "x")
	if a.posts != 1 {
		t.Fatal("post hook skipped")
	}
	// Unregister removes.
	if err := f.Unregister("b"); err != nil {
		t.Fatal(err)
	}
	if err := f.VnodeCheck(cred, o, OpVnodeRead, ""); err != nil {
		t.Fatalf("check after unregister: %v", err)
	}
	if err := f.Unregister("b"); err == nil {
		t.Fatal("double unregister succeeded")
	}
}

func TestEmptyFrameworkPermitsEverything(t *testing.T) {
	f := NewFramework()
	cred := NewCred(0, 0)
	o := &obj{}
	if err := f.VnodeCheck(cred, o, OpVnodeWrite, ""); err != nil {
		t.Fatal(err)
	}
	if err := f.PipeCheck(cred, o, OpPipeRead); err != nil {
		t.Fatal(err)
	}
	if err := f.SocketCheck(cred, o, OpSockCreate); err != nil {
		t.Fatal(err)
	}
	if err := f.ProcCheck(cred, cred, OpProcSignal); err != nil {
		t.Fatal(err)
	}
	if err := f.SystemCheck(cred, OpKmodUnload, "shill"); err != nil {
		t.Fatal(err)
	}
}

func TestOpStrings(t *testing.T) {
	// Spot-check the operation vocabulary used in logs.
	if OpVnodeWrite.String() != "write" || OpVnodeCreateFile.String() != "create-file" {
		t.Fatal("vnode op names")
	}
	if OpSockCreate.String() != "sock-create" || OpProcWait.String() != "proc-wait" {
		t.Fatal("sock/proc op names")
	}
	if OpSysctlRead.String() != "sysctl-read" {
		t.Fatal("system op names")
	}
}
