// Package mac is a reimplementation of the TrustedBSD MAC framework
// architecture (Watson & Vance, 2003) that the paper builds its sandbox
// on (§3.2): third-party policy modules register entry points, the
// framework mediates access to sensitive kernel objects by invoking every
// registered policy's checks, and a policy-agnostic label is attached to
// each kernel object for policies to hang state off.
//
// The framework is deliberately object-agnostic: kernel objects implement
// Labeled, and checks carry an operation code plus the subject
// credential. Granularity quirks of the real framework that the paper
// reports as limitations are reproduced by the operation vocabulary:
// there is a single OpVnodeWrite entry point (so write and append cannot
// be distinguished, §3.2.3) and there are no entry points around
// character-device reads and writes (the kernel simply never calls the
// framework for those operations).
package mac

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
)

// Label is policy-agnostic per-object storage. Each registered policy may
// store one slot value under its name. The zero value is ready to use.
type Label struct {
	mu    sync.RWMutex
	slots map[string]any
}

// Get returns the slot value stored by the named policy, or nil.
func (l *Label) Get(policy string) any {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.slots[policy]
}

// Set stores a slot value for the named policy.
func (l *Label) Set(policy string, v any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.slots == nil {
		l.slots = make(map[string]any)
	}
	l.slots[policy] = v
}

// GetOrInit returns the slot for the named policy, initialising it with
// init() under the label lock if absent.
func (l *Label) GetOrInit(policy string, init func() any) any {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.slots == nil {
		l.slots = make(map[string]any)
	}
	v, ok := l.slots[policy]
	if !ok {
		v = init()
		l.slots[policy] = v
	}
	return v
}

// Labeled is implemented by every kernel object the framework can
// mediate: vnodes, pipes, and sockets.
type Labeled interface {
	MACLabel() *Label
}

// Cred is a subject credential: the classic UNIX identity used for DAC
// plus a label where policies (e.g. SHILL's session pointer) store
// subject state.
type Cred struct {
	UID   int
	GID   int
	label Label
}

// NewCred returns a credential for the given identity.
func NewCred(uid, gid int) *Cred { return &Cred{UID: uid, GID: gid} }

// MACLabel returns the credential's label.
func (c *Cred) MACLabel() *Label { return &c.label }

// Fork returns a copy of the credential sharing policy state. In this
// model policies store pointers in the label, so a shallow slot copy
// shares the subject state exactly as inheriting a FreeBSD ucred does.
func (c *Cred) Fork() *Cred {
	nc := &Cred{UID: c.UID, GID: c.GID}
	c.label.mu.RLock()
	defer c.label.mu.RUnlock()
	if c.label.slots != nil {
		nc.label.slots = make(map[string]any, len(c.label.slots))
		for k, v := range c.label.slots {
			nc.label.slots[k] = v
		}
	}
	return nc
}

// VnodeOp enumerates mediated vnode operations.
type VnodeOp int

// Vnode operations. OpVnodeWrite intentionally covers both write and
// append: the framework "exposes a single entry point for operations
// that write to filesystem objects" (§3.2.3).
const (
	OpVnodeLookup VnodeOp = iota
	OpVnodeRead
	OpVnodeWrite
	OpVnodeStat
	OpVnodeExec
	OpVnodeReaddir
	OpVnodeCreateFile
	OpVnodeCreateDir
	OpVnodeCreateSymlink
	OpVnodeReadSymlink
	OpVnodeUnlinkFile // removing a file entry from a directory
	OpVnodeUnlinkDir  // removing a subdirectory entry
	OpVnodeUnlinked   // the object being removed
	OpVnodeLink       // the file being linked
	OpVnodeAddLink    // the directory receiving the link
	OpVnodeRename
	OpVnodeChmod
	OpVnodeChown
	OpVnodeChflags
	OpVnodeUtimes
	OpVnodeTruncate
	OpVnodeChdir
	OpVnodePathLookup // the path(2) reverse-lookup added by the SHILL module
)

// vnodeOpNames is indexed by VnodeOp: String() sits on the audit
// subsystem's per-check hot path, so the lookup is an array index
// rather than a map access.
var vnodeOpNames = [...]string{
	OpVnodeLookup:        "lookup",
	OpVnodeRead:          "read",
	OpVnodeWrite:         "write",
	OpVnodeStat:          "stat",
	OpVnodeExec:          "exec",
	OpVnodeReaddir:       "readdir",
	OpVnodeCreateFile:    "create-file",
	OpVnodeCreateDir:     "create-dir",
	OpVnodeCreateSymlink: "create-symlink",
	OpVnodeReadSymlink:   "read-symlink",
	OpVnodeUnlinkFile:    "unlink-file",
	OpVnodeUnlinkDir:     "unlink-dir",
	OpVnodeUnlinked:      "unlinked",
	OpVnodeLink:          "link",
	OpVnodeAddLink:       "add-link",
	OpVnodeRename:        "rename",
	OpVnodeChmod:         "chmod",
	OpVnodeChown:         "chown",
	OpVnodeChflags:       "chflags",
	OpVnodeUtimes:        "utimes",
	OpVnodeTruncate:      "truncate",
	OpVnodeChdir:         "chdir",
	OpVnodePathLookup:    "path-lookup",
}

func (op VnodeOp) String() string {
	if op >= 0 && int(op) < len(vnodeOpNames) {
		return vnodeOpNames[op]
	}
	return fmt.Sprintf("vnode-op(%d)", int(op))
}

// PipeOp enumerates mediated pipe operations.
type PipeOp int

// Pipe operations.
const (
	OpPipeRead PipeOp = iota
	OpPipeWrite
	OpPipeStat
)

func (op PipeOp) String() string {
	switch op {
	case OpPipeRead:
		return "pipe-read"
	case OpPipeWrite:
		return "pipe-write"
	case OpPipeStat:
		return "pipe-stat"
	}
	return fmt.Sprintf("pipe-op(%d)", int(op))
}

// SocketOp enumerates mediated socket operations.
type SocketOp int

// Socket operations, one per SHILL socket privilege.
const (
	OpSockCreate SocketOp = iota
	OpSockBind
	OpSockConnect
	OpSockListen
	OpSockAccept
	OpSockSend
	OpSockRecv
)

func (op SocketOp) String() string {
	switch op {
	case OpSockCreate:
		return "sock-create"
	case OpSockBind:
		return "sock-bind"
	case OpSockConnect:
		return "sock-connect"
	case OpSockListen:
		return "sock-listen"
	case OpSockAccept:
		return "sock-accept"
	case OpSockSend:
		return "sock-send"
	case OpSockRecv:
		return "sock-recv"
	}
	return fmt.Sprintf("sock-op(%d)", int(op))
}

// ProcOp enumerates mediated inter-process operations.
type ProcOp int

// Process operations (§3.2.2 "Process interaction").
const (
	OpProcSignal ProcOp = iota
	OpProcWait
	OpProcDebug
	OpProcSched // scheduling control (renice etc.)
)

func (op ProcOp) String() string {
	switch op {
	case OpProcSignal:
		return "proc-signal"
	case OpProcWait:
		return "proc-wait"
	case OpProcDebug:
		return "proc-debug"
	case OpProcSched:
		return "proc-sched"
	}
	return fmt.Sprintf("proc-op(%d)", int(op))
}

// SystemOp enumerates mediated system-wide operations (Figure 7 rows).
type SystemOp int

// System operations.
const (
	OpSysctlRead SystemOp = iota
	OpSysctlWrite
	OpKenvRead
	OpKenvWrite
	OpKmodLoad
	OpKmodUnload
	OpPosixIPC
	OpSysvIPC
)

func (op SystemOp) String() string {
	switch op {
	case OpSysctlRead:
		return "sysctl-read"
	case OpSysctlWrite:
		return "sysctl-write"
	case OpKenvRead:
		return "kenv-read"
	case OpKenvWrite:
		return "kenv-write"
	case OpKmodLoad:
		return "kmod-load"
	case OpKmodUnload:
		return "kmod-unload"
	case OpPosixIPC:
		return "posix-ipc"
	case OpSysvIPC:
		return "sysv-ipc"
	}
	return fmt.Sprintf("system-op(%d)", int(op))
}

// Policy is a MAC policy module. Checks return nil to permit an
// operation; any error denies it. Post hooks fire after an operation has
// succeeded and may update labels; mac_vnode_post_lookup and
// mac_vnode_post_create are the two entry points the paper added to the
// framework (§3.2.2 "Derived capabilities").
type Policy interface {
	Name() string

	VnodeCheck(cred *Cred, vn Labeled, op VnodeOp, name string) error
	VnodePostLookup(cred *Cred, dir, child Labeled, name string)
	VnodePostCreate(cred *Cred, dir, child Labeled, name string, op VnodeOp)

	PipeCheck(cred *Cred, p Labeled, op PipeOp) error
	SocketCheck(cred *Cred, so Labeled, op SocketOp) error
	// SocketPostAccept fires after a listener accepts a connection so
	// policies can propagate labels to the new endpoint.
	SocketPostAccept(cred *Cred, listener, conn Labeled)
	ProcCheck(cred, target *Cred, op ProcOp) error
	SystemCheck(cred *Cred, op SystemOp, name string) error
}

// BasePolicy is a Policy that permits everything and hooks nothing.
// Policies embed it and override the entry points they care about.
type BasePolicy struct{}

// VnodeCheck permits all vnode operations.
func (BasePolicy) VnodeCheck(*Cred, Labeled, VnodeOp, string) error { return nil }

// VnodePostLookup does nothing.
func (BasePolicy) VnodePostLookup(*Cred, Labeled, Labeled, string) {}

// VnodePostCreate does nothing.
func (BasePolicy) VnodePostCreate(*Cred, Labeled, Labeled, string, VnodeOp) {}

// PipeCheck permits all pipe operations.
func (BasePolicy) PipeCheck(*Cred, Labeled, PipeOp) error { return nil }

// SocketCheck permits all socket operations.
func (BasePolicy) SocketCheck(*Cred, Labeled, SocketOp) error { return nil }

// SocketPostAccept does nothing.
func (BasePolicy) SocketPostAccept(*Cred, Labeled, Labeled) {}

// ProcCheck permits all process operations.
func (BasePolicy) ProcCheck(*Cred, *Cred, ProcOp) error { return nil }

// SystemCheck permits all system operations.
func (BasePolicy) SystemCheck(*Cred, SystemOp, string) error { return nil }

// Framework composes registered policies: an operation is permitted only
// if every policy permits it, mirroring the MAC framework's composition
// of third-party modules with the kernel's DAC (§2.3). The policy list
// is copy-on-write: registration replaces the published slice, so the
// per-syscall check path is a single atomic load with no allocation —
// matching the real framework's read-mostly design.
type Framework struct {
	mu       sync.Mutex   // serialises Register/Unregister
	policies atomic.Value // []Policy
}

// NewFramework returns an empty framework (no policies: everything that
// passes DAC is permitted — the paper's "Baseline" configuration).
func NewFramework() *Framework {
	f := &Framework{}
	f.policies.Store([]Policy(nil))
	return f
}

// Register adds a policy module. It corresponds to loading the SHILL
// kernel module (the paper's "SHILL installed" configuration).
func (f *Framework) Register(p Policy) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.policies.Load().([]Policy)
	for _, q := range cur {
		if q.Name() == p.Name() {
			return fmt.Errorf("mac: policy %q already registered", p.Name())
		}
	}
	next := make([]Policy, len(cur), len(cur)+1)
	copy(next, cur)
	f.policies.Store(append(next, p))
	return nil
}

// Unregister removes a policy module by name.
func (f *Framework) Unregister(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.policies.Load().([]Policy)
	for i, q := range cur {
		if q.Name() == name {
			next := make([]Policy, 0, len(cur)-1)
			next = append(next, cur[:i]...)
			next = append(next, cur[i+1:]...)
			f.policies.Store(next)
			return nil
		}
	}
	return fmt.Errorf("mac: policy %q not registered", name)
}

// Policies returns the published policy list. Callers must not mutate
// it.
func (f *Framework) Policies() []Policy {
	return f.policies.Load().([]Policy)
}

// VnodeCheck runs every policy's vnode check. A denial is annotated
// with the name of the policy module that produced it (audit.Annotate),
// so the deciding layer survives into the caller's error chain even for
// third-party policies that return bare errnos.
func (f *Framework) VnodeCheck(cred *Cred, vn Labeled, op VnodeOp, name string) error {
	for _, p := range f.Policies() {
		if err := p.VnodeCheck(cred, vn, op, name); err != nil {
			return audit.Annotate(err, p.Name(), op.String(), name)
		}
	}
	return nil
}

// VnodePostLookup fires the post-lookup hook on every policy.
func (f *Framework) VnodePostLookup(cred *Cred, dir, child Labeled, name string) {
	for _, p := range f.Policies() {
		p.VnodePostLookup(cred, dir, child, name)
	}
}

// VnodePostCreate fires the post-create hook on every policy.
func (f *Framework) VnodePostCreate(cred *Cred, dir, child Labeled, name string, op VnodeOp) {
	for _, p := range f.Policies() {
		p.VnodePostCreate(cred, dir, child, name, op)
	}
}

// PipeCheck runs every policy's pipe check.
func (f *Framework) PipeCheck(cred *Cred, pl Labeled, op PipeOp) error {
	for _, p := range f.Policies() {
		if err := p.PipeCheck(cred, pl, op); err != nil {
			return audit.Annotate(err, p.Name(), op.String(), "pipe")
		}
	}
	return nil
}

// SocketCheck runs every policy's socket check.
func (f *Framework) SocketCheck(cred *Cred, so Labeled, op SocketOp) error {
	for _, p := range f.Policies() {
		if err := p.SocketCheck(cred, so, op); err != nil {
			return audit.Annotate(err, p.Name(), op.String(), "socket")
		}
	}
	return nil
}

// SocketPostAccept fires the post-accept hook on every policy.
func (f *Framework) SocketPostAccept(cred *Cred, listener, conn Labeled) {
	for _, p := range f.Policies() {
		p.SocketPostAccept(cred, listener, conn)
	}
}

// ProcCheck runs every policy's process check.
func (f *Framework) ProcCheck(cred, target *Cred, op ProcOp) error {
	for _, p := range f.Policies() {
		if err := p.ProcCheck(cred, target, op); err != nil {
			return audit.Annotate(err, p.Name(), op.String(), "process")
		}
	}
	return nil
}

// SystemCheck runs every policy's system check.
func (f *Framework) SystemCheck(cred *Cred, op SystemOp, name string) error {
	for _, p := range f.Policies() {
		if err := p.SystemCheck(cred, op, name); err != nil {
			return audit.Annotate(err, p.Name(), op.String(), name)
		}
	}
	return nil
}
