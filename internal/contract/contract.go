// Package contract implements SHILL's contract system (§2.2, §2.4.2):
// declarative security policies attached to the functions a script
// provides. Contracts follow the Design by Contract discipline with
// blame — every contract application records a provider (positive party)
// and a consumer (negative party); a violated precondition blames the
// consumer, a violated postcondition blames the provider, and the error
// "indicates which part of the script failed to meet its obligations".
//
// Capability contracts wrap capabilities in attenuating proxies (the
// paper uses Racket chaperones; here cap.Capability.Restrict plays that
// role). Function contracts wrap callables. Bounded parametric
// polymorphic contracts ("forall X with {…} . {…} → …") dynamically seal
// capabilities as they flow into a function body and unseal them as they
// flow out to function-typed arguments (§2.4.2).
package contract

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/cap"
	"repro/internal/priv"
	"repro/internal/wallet"
)

// Value is any SHILL language value.
type Value = any

// Callable is any SHILL function value: closures, builtins, and
// contract-wrapped functions all implement it.
type Callable interface {
	// Call invokes the function with positional and named arguments.
	Call(args []Value, named map[string]Value) (Value, error)
	// FuncName returns a human-readable name for blame messages.
	FuncName() string
}

// Violation is a contract violation: execution aborts and the blamed
// party is reported (§2.2).
type Violation struct {
	Contract string // contract description
	Blamed   string // party that failed its obligation
	Message  string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("contract violation: %s\n  contract: %s\n  blaming: %s", v.Message, v.Contract, v.Blamed)
}

// Blame tracks the two parties to a contract agreement. Pos is the
// provider of the value (server), Neg the consumer (client).
type Blame struct {
	Pos string
	Neg string
}

// Swap returns the blame with parties exchanged — applied at function
// argument positions, where the consumer becomes the provider of the
// argument value.
func (b Blame) Swap() Blame { return Blame{Pos: b.Neg, Neg: b.Pos} }

// checkNanos accumulates time spent in contract checking, feeding the
// Figure 10 "Remaining time" breakdown.
var checkNanos atomic.Int64

// CheckTime returns the cumulative time spent applying contracts.
func CheckTime() time.Duration { return time.Duration(checkNanos.Load()) }

// ResetCheckTime zeroes the contract-checking clock (benchmarks).
func ResetCheckTime() { checkNanos.Store(0) }

// Contract is a SHILL contract. Apply checks v against the contract and
// returns the (possibly proxied) value to hand onward.
type Contract interface {
	// String renders the contract in SHILL syntax for documentation and
	// violation messages.
	String() string
	Apply(v Value, b Blame) (Value, error)
}

// Apply runs a contract application, attributing its cost to contract
// checking.
func Apply(c Contract, v Value, b Blame) (Value, error) {
	start := time.Now()
	out, err := c.Apply(v, b)
	checkNanos.Add(int64(time.Since(start)))
	return out, err
}

func violate(c Contract, b Blame, format string, args ...any) error {
	return &Violation{Contract: c.String(), Blamed: b.Pos, Message: fmt.Sprintf(format, args...)}
}

// --- flat (predicate) contracts ---

// Pred is a flat first-order contract: a named predicate over values.
// User-defined predicates written in SHILL itself become Preds (§2.4.2:
// "users can define their own contracts ... and user-defined predicates
// written in SHILL").
type Pred struct {
	Name string
	Fn   func(Value) bool
}

func (p *Pred) String() string { return p.Name }

// Apply checks the predicate; flat contracts never wrap.
func (p *Pred) Apply(v Value, b Blame) (Value, error) {
	if p.Fn(v) {
		return v, nil
	}
	return nil, violate(p, b, "value %v does not satisfy %s", Describe(v), p.Name)
}

// Builtin flat contracts.
var (
	IsFile = &Pred{Name: "is_file", Fn: func(v Value) bool {
		c, ok := unwrapCap(v)
		return ok && c.IsFile()
	}}
	IsDir = &Pred{Name: "is_dir", Fn: func(v Value) bool {
		c, ok := unwrapCap(v)
		return ok && c.IsDir()
	}}
	IsPipe = &Pred{Name: "is_pipe", Fn: func(v Value) bool {
		c, ok := unwrapCap(v)
		return ok && c.Kind() == cap.KindPipeEnd
	}}
	IsPipeFactory = &Pred{Name: "is_pipe_factory", Fn: func(v Value) bool {
		c, ok := v.(*cap.Capability)
		return ok && c.Kind() == cap.KindPipeFactory
	}}
	IsSocketFactory = &Pred{Name: "is_socket_factory", Fn: func(v Value) bool {
		c, ok := v.(*cap.Capability)
		return ok && c.Kind() == cap.KindSocketFactory
	}}
	IsBool   = &Pred{Name: "is_bool", Fn: func(v Value) bool { _, ok := v.(bool); return ok }}
	IsString = &Pred{Name: "is_string", Fn: func(v Value) bool { _, ok := v.(string); return ok }}
	IsNum    = &Pred{Name: "is_num", Fn: func(v Value) bool { _, ok := v.(float64); return ok }}
	IsList   = &Pred{Name: "is_list", Fn: func(v Value) bool { _, ok := v.([]Value); return ok }}
	IsFunc   = &Pred{Name: "is_func", Fn: func(v Value) bool { _, ok := v.(Callable); return ok }}
	IsWallet = &Pred{Name: "is_wallet", Fn: func(v Value) bool { _, ok := v.(*wallet.Wallet); return ok }}
	Any      = &Pred{Name: "any", Fn: func(Value) bool { return true }}
	// Void discards the function body's value: a void postcondition
	// promises the caller receives nothing.
	Void Contract = voidC{}
)

// voidC is the void result contract: it accepts any value and coerces it
// to nothing, so "-> void" functions never leak values (or capabilities)
// to their callers.
type voidC struct{}

func (voidC) String() string { return "void" }

// Apply discards the value.
func (voidC) Apply(v Value, b Blame) (Value, error) { return nil, nil }

// unwrapCap extracts a capability from a raw or sealed value. Sealed
// capabilities expose their attenuated view, so predicates observe what
// the body may use.
func unwrapCap(v Value) (*cap.Capability, bool) {
	switch t := v.(type) {
	case *cap.Capability:
		return t, true
	case *Sealed:
		return t.View, true
	}
	return nil, false
}

// Describe renders a value for violation messages without exposing
// capability internals.
func Describe(v Value) string {
	switch t := v.(type) {
	case nil:
		return "void"
	case *cap.Capability:
		return t.Kind().String() + " capability"
	case *Sealed:
		return "sealed capability"
	case *wallet.Wallet:
		return "wallet"
	case Callable:
		return "function " + t.FuncName()
	case string:
		return fmt.Sprintf("%q", t)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// --- capability contracts ---

// CapKindMask selects which capability kinds a CapC accepts.
type CapKindMask uint8

// Kind masks.
const (
	MaskFile CapKindMask = 1 << iota
	MaskDir
	MaskPipe
	MaskPipeFactory
	MaskSocketFactory
)

func (m CapKindMask) match(k cap.Kind) bool {
	switch k {
	case cap.KindFile:
		return m&MaskFile != 0
	case cap.KindDir:
		return m&MaskDir != 0
	case cap.KindPipeEnd:
		return m&(MaskFile|MaskPipe) != 0 // pipes are file capabilities (§2.2)
	case cap.KindPipeFactory:
		return m&MaskPipeFactory != 0
	case cap.KindSocketFactory:
		return m&MaskSocketFactory != 0
	}
	return false
}

func (m CapKindMask) String() string {
	var parts []string
	if m&MaskFile != 0 {
		parts = append(parts, "file")
	}
	if m&MaskDir != 0 {
		parts = append(parts, "dir")
	}
	if m&MaskPipe != 0 {
		parts = append(parts, "pipe")
	}
	if m&MaskPipeFactory != 0 {
		parts = append(parts, "pipe_factory")
	}
	if m&MaskSocketFactory != 0 {
		parts = append(parts, "socket_factory")
	}
	return strings.Join(parts, "|")
}

// CapC is a capability contract with a privilege set: "file(+read,+path)"
// or "dir(+create_dir with full_privileges)". Applying it wraps the
// capability in an attenuating proxy limited to the stated grant: the
// provider promises at least these privileges; the consumer may use at
// most them (§2.2).
type CapC struct {
	Mask  CapKindMask
	Grant *priv.Grant
	// Label names the contract in blame chains; defaults to String().
	Label string
}

func (c *CapC) String() string {
	g := ""
	if c.Grant != nil {
		g = "(" + strings.TrimPrefix(strings.TrimSuffix(c.Grant.String(), "}"), "{") + ")"
	}
	return c.Mask.String() + g
}

// Apply verifies kind and wraps the capability. The outcome — pass or
// violation — is recorded in the audit log so a trace shows which
// contract admitted or rejected each capability.
func (c *CapC) Apply(v Value, b Blame) (Value, error) {
	capv, ok := v.(*cap.Capability)
	if !ok {
		return nil, violate(c, b, "expected a %s capability, got %s", c.Mask, Describe(v))
	}
	if !c.Mask.match(capv.Kind()) {
		auditOutcome(capv, c.String(), b, false, "kind mismatch")
		return nil, violate(c, b, "expected a %s capability, got a %s capability", c.Mask, capv.Kind())
	}
	if c.Grant == nil {
		auditOutcome(capv, c.String(), b, true, "")
		return capv, nil
	}
	// The provider must supply at least the promised privileges.
	if !capv.Grant().Covers(c.Grant) {
		missing := c.Grant.Rights.Minus(capv.Grant().Rights)
		auditOutcome(capv, c.String(), b, false, fmt.Sprintf("lacks promised privileges %v", missing))
		return nil, violate(c, b, "capability lacks promised privileges %v", missing)
	}
	label := c.Label
	if label == "" {
		label = c.String()
	}
	auditOutcome(capv, label, b, true, "")
	return capv.Restrict(c.Grant, label), nil
}

// auditOutcome records a capability contract check in the audit log of
// the kernel the capability belongs to.
func auditOutcome(capv *cap.Capability, contractName string, b Blame, pass bool, detail string) {
	p := capv.Proc()
	if p == nil {
		return
	}
	verdict := audit.Allow
	if !pass {
		verdict = audit.Deny
		if detail == "" {
			detail = "violation"
		}
		detail += ", blaming " + b.Pos
	}
	p.Kernel().Audit().Emit(p.AuditShard(), audit.Event{
		Kind: audit.KindContract, Verdict: verdict, Layer: audit.LayerContract,
		Op: "cap-contract", Object: contractName, CapID: capv.ID(), Detail: detail,
	})
}

// --- combinators ---

// OrC accepts a value satisfying any branch; the first branch whose
// first-order check passes wins ("is_dir ∨ is_file").
type OrC struct{ Branches []Contract }

func (o *OrC) String() string {
	parts := make([]string, len(o.Branches))
	for i, c := range o.Branches {
		parts[i] = c.String()
	}
	return strings.Join(parts, " \\/ ")
}

// Apply tries each branch in order.
func (o *OrC) Apply(v Value, b Blame) (Value, error) {
	var firstErr error
	for _, c := range o.Branches {
		out, err := c.Apply(v, b)
		if err == nil {
			return out, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = violate(o, b, "no branch accepts %s", Describe(v))
	}
	return nil, &Violation{Contract: o.String(), Blamed: b.Pos,
		Message: "no branch of the disjunction accepts " + Describe(v)}
}

// AndC requires every branch; wrapping composes left to right
// ("is_file && readonly").
type AndC struct{ Branches []Contract }

func (a *AndC) String() string {
	parts := make([]string, len(a.Branches))
	for i, c := range a.Branches {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// Apply threads the value through every branch.
func (a *AndC) Apply(v Value, b Blame) (Value, error) {
	cur := v
	for _, c := range a.Branches {
		out, err := c.Apply(cur, b)
		if err != nil {
			return nil, err
		}
		cur = out
	}
	return cur, nil
}

// ListC applies an element contract to every member of a list.
type ListC struct{ Elem Contract }

func (l *ListC) String() string { return "listof " + l.Elem.String() }

// Apply checks each element.
func (l *ListC) Apply(v Value, b Blame) (Value, error) {
	list, ok := v.([]Value)
	if !ok {
		return nil, violate(l, b, "expected a list, got %s", Describe(v))
	}
	out := make([]Value, len(list))
	for i, e := range list {
		we, err := l.Elem.Apply(e, b)
		if err != nil {
			return nil, err
		}
		out[i] = we
	}
	return out, nil
}

// --- wallet contracts ---

// WalletC describes contracts for the capabilities associated with
// individual wallet keys (§2.4.1: "SHILL provides wallet contracts,
// which describe contracts for the capabilities associated with
// individual keys or groups of keys"). Keys listed in Require must be
// present; each present key's capabilities pass through its contract.
type WalletC struct {
	Name    string // e.g. "native_wallet"
	Keys    map[string]Contract
	Require []string
}

func (w *WalletC) String() string {
	if w.Name != "" {
		return w.Name
	}
	return "wallet"
}

// Apply verifies the wallet shape and attenuates each keyed capability.
func (w *WalletC) Apply(v Value, b Blame) (Value, error) {
	wal, ok := v.(*wallet.Wallet)
	if !ok {
		return nil, violate(w, b, "expected a wallet, got %s", Describe(v))
	}
	for _, key := range w.Require {
		if !wal.Has(key) {
			return nil, violate(w, b, "wallet is missing required key %q", key)
		}
	}
	if len(w.Keys) == 0 {
		return wal, nil
	}
	var applyErr error
	out := wal.Restrict(w.String(), func(key string, c *cap.Capability) *cap.Capability {
		kc, ok := w.Keys[key]
		if !ok || applyErr != nil {
			return c
		}
		wrapped, err := kc.Apply(c, b)
		if err != nil {
			applyErr = err
			return c
		}
		wc, ok := wrapped.(*cap.Capability)
		if !ok {
			applyErr = violate(w, b, "wallet key %q contract did not yield a capability", key)
			return c
		}
		return wc
	})
	if applyErr != nil {
		return nil, applyErr
	}
	return out, nil
}

// NativeWallet is the stock native-wallet contract used by scripts such
// as Figure 4's jpeginfo.
var NativeWallet = &WalletC{
	Name:    "native_wallet",
	Require: []string{wallet.KeyPath, wallet.KeyLibPath, wallet.KeyPipeFactory},
}
