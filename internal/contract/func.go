package contract

import (
	"fmt"
	"strings"

	"repro/internal/cap"
	"repro/internal/priv"
)

// Param is one named parameter of a function contract.
type Param struct {
	Name string
	C    Contract
}

// FuncC is a function contract "{x : C1, y : C2} → R" (§2.2). Applying
// it to a callable wraps the callable in a proxy that checks each
// argument against its precondition (blaming the consumer, since the
// caller provides arguments) and the result against the postcondition
// (blaming the provider).
type FuncC struct {
	Params []Param
	// Named are optional keyword parameters (e.g. exec's "stdout =").
	Named  map[string]Contract
	Result Contract
}

func (f *FuncC) String() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Name + " : " + p.C.String()
	}
	res := "void"
	if f.Result != nil {
		res = f.Result.String()
	}
	return "{" + strings.Join(parts, ", ") + "} -> " + res
}

// Apply wraps a callable value.
func (f *FuncC) Apply(v Value, b Blame) (Value, error) {
	fn, ok := v.(Callable)
	if !ok {
		return nil, violate(f, b, "expected a function, got %s", Describe(v))
	}
	return &guardedFunc{contract: f, inner: fn, blame: b}, nil
}

// guardedFunc is the proxy a FuncC wraps around a callable.
type guardedFunc struct {
	contract *FuncC
	inner    Callable
	blame    Blame
}

// FuncName names the wrapped function for blame messages.
func (g *guardedFunc) FuncName() string { return g.inner.FuncName() }

// Inner returns the wrapped callable (tests).
func (g *guardedFunc) Inner() Callable { return g.inner }

// Call checks arguments, invokes the wrapped function, and checks the
// result.
func (g *guardedFunc) Call(args []Value, named map[string]Value) (Value, error) {
	f := g.contract
	if len(args) != len(f.Params) {
		return nil, &Violation{
			Contract: f.String(),
			Blamed:   g.blame.Neg,
			Message: fmt.Sprintf("%s expects %d arguments, got %d",
				g.inner.FuncName(), len(f.Params), len(args)),
		}
	}
	wrapped := make([]Value, len(args))
	argBlame := g.blame.Swap() // caller provides arguments
	for i, a := range args {
		w, err := Apply(f.Params[i].C, a, argBlame)
		if err != nil {
			return nil, prefixViolation(err, fmt.Sprintf("argument %q of %s: ", f.Params[i].Name, g.inner.FuncName()))
		}
		wrapped[i] = w
	}
	var wrappedNamed map[string]Value
	if len(named) > 0 {
		wrappedNamed = make(map[string]Value, len(named))
		for k, a := range named {
			nc, ok := f.Named[k]
			if !ok {
				return nil, &Violation{
					Contract: f.String(),
					Blamed:   g.blame.Neg,
					Message:  fmt.Sprintf("%s does not accept named argument %q", g.inner.FuncName(), k),
				}
			}
			w, err := Apply(nc, a, argBlame)
			if err != nil {
				return nil, prefixViolation(err, fmt.Sprintf("named argument %q of %s: ", k, g.inner.FuncName()))
			}
			wrappedNamed[k] = w
		}
	}
	out, err := g.inner.Call(wrapped, wrappedNamed)
	if err != nil {
		return nil, err
	}
	if f.Result == nil {
		return out, nil
	}
	res, err := Apply(f.Result, out, g.blame)
	if err != nil {
		return nil, prefixViolation(err, fmt.Sprintf("result of %s: ", g.inner.FuncName()))
	}
	return res, nil
}

func prefixViolation(err error, prefix string) error {
	if v, ok := err.(*Violation); ok {
		return &Violation{Contract: v.Contract, Blamed: v.Blamed, Message: prefix + v.Message}
	}
	return err
}

// --- bounded parametric polymorphism (§2.4.2) ---

// SealKey is the fresh key a polymorphic contract mints per application.
type SealKey struct{ name string }

// Sealed is a capability sealed under a polymorphic contract variable:
// inside the function body only the bound privileges are visible; at
// X-typed argument positions of function-typed parameters the value is
// unsealed back to its full privileges.
type Sealed struct {
	Key *SealKey
	// Inner is the original capability with its full privileges.
	Inner *cap.Capability
	// View is the attenuated proxy the body operates through.
	View *cap.Capability
}

// String renders the sealed capability.
func (s *Sealed) String() string { return "sealed[" + s.Key.name + "]" + s.View.String() }

// SealCapability seals c under key with the given bound.
func SealCapability(key *SealKey, c *cap.Capability, bound *priv.Grant, blame string) *Sealed {
	return &Sealed{Key: key, Inner: c, View: c.Restrict(bound, blame)}
}

// Derive reproduces a derivation (e.g. lookup) under the seal: the
// derived inner keeps full derived privileges while the view stays
// attenuated, so recursion like find(child, …) keeps working and
// unsealing at filter/cmd restores full privileges (§2.4.2).
func (s *Sealed) Derive(inner, view *cap.Capability) *Sealed {
	return &Sealed{Key: s.Key, Inner: inner, View: view}
}

// PolyVar is an occurrence of the quantified variable X inside a
// polymorphic contract. Seal reports whether this occurrence seals
// (positive position: values flowing into the body) or unseals
// (negative position: values flowing out to filter/cmd).
type PolyVar struct {
	Name string
	key  **SealKey    // shared per-application key cell
	bnd  **priv.Grant // shared bound
	Seal bool
}

func (p *PolyVar) String() string { return p.Name }

// Apply seals or unseals.
func (p *PolyVar) Apply(v Value, b Blame) (Value, error) {
	if p.Seal {
		switch t := v.(type) {
		case *cap.Capability:
			if !t.Grant().Covers(*p.bnd) {
				missing := (*p.bnd).Rights.Minus(t.Grant().Rights)
				return nil, violate(p, b, "capability bound to %s lacks required privileges %v", p.Name, missing)
			}
			return SealCapability(*p.key, t, *p.bnd, "forall "+p.Name), nil
		case *Sealed:
			// Already sealed under this application (recursive call
			// through the wrapped provide): keep as is if keys match.
			if t.Key == *p.key {
				return t, nil
			}
			return nil, violate(p, b, "value sealed under a different contract variable")
		default:
			return nil, violate(p, b, "expected a capability for %s, got %s", p.Name, Describe(v))
		}
	}
	sealed, ok := v.(*Sealed)
	if !ok {
		return nil, violate(p, b, "expected a value sealed by %s, got %s", p.Name, Describe(v))
	}
	if sealed.Key != *p.key {
		return nil, violate(p, b, "value sealed under a different instantiation of %s", p.Name)
	}
	return sealed.Inner, nil
}

// PolyC is a bounded polymorphic function contract:
//
//	forall X with {+lookup, +contents} . {cur : X, …} → R
//
// Each call of the wrapped function mints a fresh seal key, seals
// X-positions in the precondition, and unseals X-positions nested inside
// function-typed parameters.
type PolyC struct {
	Var   string
	Bound *priv.Grant
	// Body builds the function contract given the two PolyVar
	// occurrences (sealing and unsealing).
	Body func(sealVar, unsealVar Contract) *FuncC
}

func (p *PolyC) String() string {
	body := p.Body(&PolyVar{Name: p.Var, Seal: true, key: new(*SealKey), bnd: new(*priv.Grant)},
		&PolyVar{Name: p.Var, Seal: false, key: new(*SealKey), bnd: new(*priv.Grant)})
	return "forall " + p.Var + " with " + p.Bound.String() + " . " + body.String()
}

// Apply wraps the callable so each invocation instantiates X freshly.
func (p *PolyC) Apply(v Value, b Blame) (Value, error) {
	fn, ok := v.(Callable)
	if !ok {
		return nil, violate(p, b, "expected a function, got %s", Describe(v))
	}
	return &polyFunc{contract: p, inner: fn, blame: b}, nil
}

type polyFunc struct {
	contract *PolyC
	inner    Callable
	blame    Blame
}

// FuncName names the wrapped function.
func (pf *polyFunc) FuncName() string { return pf.inner.FuncName() }

// Call instantiates the quantifier and delegates to the built function
// contract.
func (pf *polyFunc) Call(args []Value, named map[string]Value) (Value, error) {
	key := &SealKey{name: pf.contract.Var}
	bound := pf.contract.Bound
	keyCell, bndCell := &key, &bound
	sealVar := &PolyVar{Name: pf.contract.Var, Seal: true, key: keyCell, bnd: bndCell}
	unsealVar := &PolyVar{Name: pf.contract.Var, Seal: false, key: keyCell, bnd: bndCell}
	fc := pf.contract.Body(sealVar, unsealVar)
	wrapped, err := fc.Apply(pf.inner, pf.blame)
	if err != nil {
		return nil, err
	}
	return wrapped.(Callable).Call(args, named)
}
