package contract_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/cap"
	"repro/internal/contract"
	"repro/internal/kernel"
	"repro/internal/priv"
)

// blameWorld builds a kernel, an unprivileged process, and a full-grant
// capability for a staged file.
func blameWorld(t *testing.T) (*kernel.Kernel, *cap.Capability) {
	t.Helper()
	k := kernel.New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/w/doc.txt", []byte("text"), 0o666, 1001, 1001); err != nil {
		t.Fatal(err)
	}
	proc := k.NewProc(1001, 1001)
	return k, cap.NewFile(proc, k.FS.MustResolve("/w/doc.txt"), priv.FullGrant()).Announce("test")
}

// TestBlameChainNamesEveryRestrictingContract: a capability attenuated
// by a stack of labelled contracts reports the whole chain, outermost
// first, in both the script-visible error and the audited denial — so
// "which contract took this privilege away" is always answerable.
func TestBlameChainNamesEveryRestrictingContract(t *testing.T) {
	k, file := blameWorld(t)

	outer := &contract.CapC{Mask: contract.MaskFile,
		Grant: priv.GrantOf(priv.NewSet(priv.RRead, priv.RAppend, priv.RStat)), Label: "outer-policy"}
	inner := &contract.CapC{Mask: contract.MaskFile,
		Grant: priv.GrantOf(priv.NewSet(priv.RRead, priv.RStat)), Label: "inner-readonly"}

	v1, err := contract.Apply(outer, file, contract.Blame{Pos: "provider.cap", Neg: "driver"})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := contract.Apply(inner, v1, contract.Blame{Pos: "provider.cap", Neg: "driver"})
	if err != nil {
		t.Fatal(err)
	}
	restricted := v2.(*cap.Capability)

	if got := restricted.BlameChain(); len(got) != 2 || got[0] != "outer-policy" || got[1] != "inner-readonly" {
		t.Fatalf("blame chain = %v, want [outer-policy inner-readonly]", got)
	}

	// Reads stay allowed; a write must fail naming the chain.
	if _, err := restricted.Read(); err != nil {
		t.Fatalf("read through the restricted capability: %v", err)
	}
	seq := k.Audit().Seq()
	werr := restricted.Write([]byte("nope"))
	if werr == nil {
		t.Fatal("write through a read-only chain succeeded")
	}
	var np *cap.NoPrivilegeError
	if !errors.As(werr, &np) {
		t.Fatalf("want NoPrivilegeError, got %T: %v", werr, werr)
	}
	if len(np.Blame) != 2 || np.Blame[0] != "outer-policy" || np.Blame[1] != "inner-readonly" {
		t.Fatalf("error blame = %v, want the full restriction chain", np.Blame)
	}
	if !np.Missing.Has(priv.RWrite) {
		t.Fatalf("missing = %v, want +write", np.Missing)
	}
	msg := werr.Error()
	if !strings.Contains(msg, "outer-policy") || !strings.Contains(msg, "inner-readonly") {
		t.Fatalf("rendered error must name the restricting contracts: %q", msg)
	}

	// The audited denial carries the same chain.
	reasons := k.Audit().DenyReasonsSince(seq)
	found := false
	for _, d := range reasons {
		d.Resolve() // blame is described lazily; force it for field reads
		if d.Layer == audit.LayerCapability && d.Missing.Has(priv.RWrite) {
			found = true
			if len(d.Blame) == 0 || !strings.Contains(d.Blame[0], "outer-policy") ||
				!strings.Contains(d.Blame[0], "inner-readonly") {
				t.Fatalf("audited denial blame = %v, want the restriction chain", d.Blame)
			}
		}
	}
	if !found {
		t.Fatalf("no audited capability denial recorded; window: %v", reasons)
	}
}

// TestFuncContractBlameParties: a function contract blames the right
// party — the consumer for a bad argument, the provider for a bad
// result — and the violation names the offending parameter.
func TestFuncContractBlameParties(t *testing.T) {
	_, file := blameWorld(t)

	fc := &contract.FuncC{
		Params: []contract.Param{{Name: "n", C: contract.IsNum}},
		Result: contract.IsString,
	}
	badResult := callable{name: "bad", fn: func(args []contract.Value) (contract.Value, error) {
		return 42.0, nil // violates the is_string postcondition
	}}
	wrapped, err := contract.Apply(fc, badResult, contract.Blame{Pos: "provider.cap", Neg: "client"})
	if err != nil {
		t.Fatal(err)
	}
	fn := wrapped.(contract.Callable)

	// Bad argument: the consumer (negative party) is blamed.
	_, aerr := fn.Call([]contract.Value{file}, nil)
	v := asViolation(t, aerr)
	if v.Blamed != "client" {
		t.Fatalf("argument violation blames %q, want the consumer %q", v.Blamed, "client")
	}
	if !strings.Contains(v.Message, `argument "n"`) {
		t.Fatalf("violation must name the offending parameter: %q", v.Message)
	}

	// Bad result: the provider (positive party) is blamed.
	_, rerr := fn.Call([]contract.Value{1.0}, nil)
	v = asViolation(t, rerr)
	if v.Blamed != "provider.cap" {
		t.Fatalf("result violation blames %q, want the provider %q", v.Blamed, "provider.cap")
	}
}

type callable struct {
	name string
	fn   func(args []contract.Value) (contract.Value, error)
}

func (c callable) FuncName() string { return c.name }
func (c callable) Call(args []contract.Value, named map[string]contract.Value) (contract.Value, error) {
	return c.fn(args)
}

func asViolation(t *testing.T, err error) *contract.Violation {
	t.Helper()
	var v *contract.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want contract.Violation, got %T: %v", err, err)
	}
	return v
}
