package contract

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cap"
	"repro/internal/kernel"
	"repro/internal/priv"
	"repro/internal/wallet"
)

// world builds a kernel with a file and a directory plus full-privilege
// capabilities for them.
func world(t *testing.T) (*kernel.Kernel, *cap.Capability, *cap.Capability) {
	t.Helper()
	k := kernel.New()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/d/f.txt", []byte("hello"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(0, 0)
	dir := cap.NewDir(p, k.FS.MustResolve("/d"), priv.FullGrant())
	file := cap.NewFile(p, k.FS.MustResolve("/d/f.txt"), priv.FullGrant())
	return k, dir, file
}

var testBlame = Blame{Pos: "provider", Neg: "consumer"}

func TestPredicates(t *testing.T) {
	_, dir, file := world(t)
	cases := []struct {
		p    *Pred
		v    Value
		want bool
	}{
		{IsFile, file, true},
		{IsFile, dir, false},
		{IsDir, dir, true},
		{IsDir, file, false},
		{IsBool, true, true},
		{IsBool, "no", false},
		{IsString, "s", true},
		{IsNum, 3.0, true},
		{IsNum, 3, false}, // language numbers are float64
		{IsList, []Value{}, true},
		{IsWallet, wallet.New(), true},
		{Any, nil, true},
	}
	for _, c := range cases {
		if got := c.p.Fn(c.v); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.p.Name, Describe(c.v), got, c.want)
		}
	}
}

func TestPredApplyBlamesProvider(t *testing.T) {
	_, _, file := world(t)
	_, err := IsDir.Apply(file, testBlame)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want Violation, got %v", err)
	}
	if v.Blamed != "provider" {
		t.Fatalf("blamed %q, want provider", v.Blamed)
	}
}

func TestCapCAttenuates(t *testing.T) {
	_, _, file := world(t)
	c := &CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead, priv.RPath)}
	out, err := c.Apply(file, testBlame)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := out.(*cap.Capability)
	if _, err := wrapped.Read(); err != nil {
		t.Fatalf("read within contract: %v", err)
	}
	if err := wrapped.Write([]byte("x")); err == nil {
		t.Fatal("write beyond contract succeeded")
	}
	// The original capability is unchanged (proxy semantics).
	if err := file.Write([]byte("y")); err != nil {
		t.Fatalf("original capability attenuated: %v", err)
	}
}

func TestCapCRejectsWrongKind(t *testing.T) {
	_, dir, _ := world(t)
	c := &CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead)}
	if _, err := c.Apply(dir, testBlame); err == nil {
		t.Fatal("dir accepted by file contract")
	}
	if _, err := c.Apply("not a capability", testBlame); err == nil {
		t.Fatal("string accepted by file contract")
	}
}

func TestCapCDemandsPromisedPrivileges(t *testing.T) {
	_, _, file := world(t)
	weak := file.Restrict(priv.NewGrant(priv.RRead), "weak")
	c := &CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead, priv.RWrite)}
	_, err := c.Apply(weak, testBlame)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("under-privileged capability accepted: %v", err)
	}
	if !strings.Contains(v.Message, "write") {
		t.Fatalf("violation does not name the missing privilege: %s", v.Message)
	}
}

func TestOrContractPicksBranch(t *testing.T) {
	_, dir, file := world(t)
	c := &OrC{Branches: []Contract{
		&CapC{Mask: MaskDir, Grant: priv.NewGrant(priv.RContents)},
		&CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead)},
	}}
	if _, err := c.Apply(dir, testBlame); err != nil {
		t.Fatalf("dir branch: %v", err)
	}
	if _, err := c.Apply(file, testBlame); err != nil {
		t.Fatalf("file branch: %v", err)
	}
	if _, err := c.Apply(3.0, testBlame); err == nil {
		t.Fatal("number accepted")
	}
}

func TestAndContractComposesWrapping(t *testing.T) {
	_, _, file := world(t)
	c := &AndC{Branches: []Contract{
		IsFile,
		&CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead, priv.RWrite, priv.RAppend, priv.RTruncate)},
		&CapC{Mask: MaskFile, Grant: priv.NewGrant(priv.RRead)},
	}}
	out, err := c.Apply(file, testBlame)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := out.(*cap.Capability)
	// The conjunction intersects: only +read survives.
	if !wrapped.Grant().Rights.Has(priv.RRead) || wrapped.Grant().Rights.Has(priv.RWrite) {
		t.Fatalf("grant after && = %v", wrapped.Grant())
	}
}

func TestListContract(t *testing.T) {
	c := &ListC{Elem: IsString}
	if _, err := c.Apply([]Value{"a", "b"}, testBlame); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply([]Value{"a", 1.0}, testBlame); err == nil {
		t.Fatal("mixed list accepted")
	}
	if _, err := c.Apply("not a list", testBlame); err == nil {
		t.Fatal("non-list accepted")
	}
}

func TestVoidCoerces(t *testing.T) {
	out, err := Void.Apply(42.0, testBlame)
	if err != nil || out != nil {
		t.Fatalf("Void.Apply = %v, %v", out, err)
	}
}

// fn is a test callable.
type fn struct {
	name string
	f    func(args []Value, named map[string]Value) (Value, error)
}

func (f fn) FuncName() string { return f.name }
func (f fn) Call(args []Value, named map[string]Value) (Value, error) {
	return f.f(args, named)
}

func TestFuncContractChecksArgsAndResult(t *testing.T) {
	id := fn{"id", func(args []Value, _ map[string]Value) (Value, error) { return args[0], nil }}
	c := &FuncC{
		Params: []Param{{Name: "x", C: IsString}},
		Result: IsString,
	}
	out, err := c.Apply(id, testBlame)
	if err != nil {
		t.Fatal(err)
	}
	g := out.(Callable)
	if res, err := g.Call([]Value{"ok"}, nil); err != nil || res != "ok" {
		t.Fatalf("call = %v, %v", res, err)
	}
	// Bad argument blames the consumer.
	_, err = g.Call([]Value{1.0}, nil)
	var v *Violation
	if !errors.As(err, &v) || v.Blamed != "consumer" {
		t.Fatalf("bad argument: %v", err)
	}
	// Wrong arity blames the consumer.
	if _, err := g.Call(nil, nil); err == nil {
		t.Fatal("arity violation accepted")
	}
}

func TestFuncContractBlamesProviderForResult(t *testing.T) {
	bad := fn{"bad", func([]Value, map[string]Value) (Value, error) { return 7.0, nil }}
	c := &FuncC{Params: []Param{{Name: "x", C: Any}}, Result: IsString}
	g, _ := c.Apply(bad, testBlame)
	_, err := g.(Callable).Call([]Value{nil}, nil)
	var v *Violation
	if !errors.As(err, &v) || v.Blamed != "provider" {
		t.Fatalf("result violation: %v", err)
	}
}

func TestFuncContractNamedArgs(t *testing.T) {
	echo := fn{"echo", func(_ []Value, named map[string]Value) (Value, error) {
		return named["out"], nil
	}}
	c := &FuncC{
		Params: []Param{{Name: "x", C: Any}},
		Named:  map[string]Contract{"out": IsString},
		Result: Any,
	}
	g, _ := c.Apply(echo, testBlame)
	if res, err := g.(Callable).Call([]Value{nil}, map[string]Value{"out": "v"}); err != nil || res != "v" {
		t.Fatalf("named call = %v, %v", res, err)
	}
	if _, err := g.(Callable).Call([]Value{nil}, map[string]Value{"out": 1.0}); err == nil {
		t.Fatal("bad named argument accepted")
	}
	if _, err := g.(Callable).Call([]Value{nil}, map[string]Value{"unknown": "v"}); err == nil {
		t.Fatal("undeclared named argument accepted")
	}
}

// TestPolySealUnseal exercises the §2.4.2 sealing semantics directly.
func TestPolySealUnseal(t *testing.T) {
	_, dir, _ := world(t)
	bound := priv.NewGrant(priv.RLookup, priv.RContents)

	// body receives the sealed capability and hands it to the callback.
	var sealedSeen *Sealed
	body := fn{"body", func(args []Value, _ map[string]Value) (Value, error) {
		s, ok := args[0].(*Sealed)
		if !ok {
			t.Fatalf("body got %T, want *Sealed", args[0])
		}
		sealedSeen = s
		cb := args[1].(Callable)
		return cb.Call([]Value{s}, nil)
	}}

	pc := &PolyC{
		Var:   "X",
		Bound: bound,
		Body: func(sealVar, unsealVar Contract) *FuncC {
			return &FuncC{
				Params: []Param{
					{Name: "cur", C: sealVar},
					{Name: "cb", C: &FuncC{Params: []Param{{Name: "_", C: unsealVar}}, Result: Any}},
				},
				Result: Any,
			}
		},
	}
	wrapped, err := pc.Apply(body, testBlame)
	if err != nil {
		t.Fatal(err)
	}
	var unsealedSeen *cap.Capability
	cb := fn{"cb", func(args []Value, _ map[string]Value) (Value, error) {
		unsealedSeen = args[0].(*cap.Capability)
		return nil, nil
	}}
	if _, err := wrapped.(Callable).Call([]Value{dir, cb}, nil); err != nil {
		t.Fatal(err)
	}
	// Inside the body the view is attenuated to the bound.
	if sealedSeen.View.Grant().Rights.Has(priv.RRead) {
		t.Fatal("sealed view kept +read beyond the bound")
	}
	// The callback sees the original full privileges.
	if !unsealedSeen.Grant().Rights.Has(priv.RRead) {
		t.Fatal("unsealed capability lost its privileges")
	}
}

func TestPolyRejectsUnderprivilegedArgument(t *testing.T) {
	_, dir, _ := world(t)
	weak := dir.Restrict(priv.NewGrant(priv.RContents), "weak") // lacks +lookup
	pc := &PolyC{
		Var:   "X",
		Bound: priv.NewGrant(priv.RLookup, priv.RContents),
		Body: func(sealVar, _ Contract) *FuncC {
			return &FuncC{Params: []Param{{Name: "cur", C: sealVar}}, Result: Any}
		},
	}
	body := fn{"body", func(args []Value, _ map[string]Value) (Value, error) { return nil, nil }}
	wrapped, _ := pc.Apply(body, testBlame)
	if _, err := wrapped.(Callable).Call([]Value{weak}, nil); err == nil {
		t.Fatal("capability below the bound accepted")
	}
}

func TestPolyRejectsForeignSeal(t *testing.T) {
	_, dir, _ := world(t)
	foreign := SealCapability(&SealKey{}, dir, priv.NewGrant(priv.RLookup), "other")
	pc := &PolyC{
		Var:   "X",
		Bound: priv.NewGrant(priv.RLookup),
		Body: func(_, unsealVar Contract) *FuncC {
			return &FuncC{Params: []Param{{Name: "v", C: unsealVar}}, Result: Any}
		},
	}
	body := fn{"body", func(args []Value, _ map[string]Value) (Value, error) { return nil, nil }}
	wrapped, _ := pc.Apply(body, testBlame)
	if _, err := wrapped.(Callable).Call([]Value{foreign}, nil); err == nil {
		t.Fatal("value sealed under a different key accepted at an unseal position")
	}
}

func TestWalletContract(t *testing.T) {
	_, dir, _ := world(t)
	w := wallet.New()
	w.Put(wallet.KeyPath, dir)
	w.Put(wallet.KeyLibPath, dir)

	// Missing pipe factory: the native-wallet contract rejects.
	if _, err := NativeWallet.Apply(w, testBlame); err == nil {
		t.Fatal("wallet without a pipe factory accepted as native")
	}
	w.Put(wallet.KeyPipeFactory, dir) // any capability satisfies presence
	if _, err := NativeWallet.Apply(w, testBlame); err != nil {
		t.Fatalf("native wallet rejected: %v", err)
	}

	// Keyed contracts attenuate wallet entries.
	wc := &WalletC{
		Name: "w",
		Keys: map[string]Contract{
			wallet.KeyPath: &CapC{Mask: MaskDir, Grant: priv.NewGrant(priv.RLookup)},
		},
	}
	out, err := wc.Apply(w, testBlame)
	if err != nil {
		t.Fatal(err)
	}
	restricted := out.(*wallet.Wallet).Get(wallet.KeyPath)[0]
	if restricted.Grant().Rights.Has(priv.RRead) {
		t.Fatal("wallet key contract did not attenuate")
	}
	// The original wallet is untouched.
	if !w.Get(wallet.KeyPath)[0].Grant().Rights.Has(priv.RRead) {
		t.Fatal("original wallet attenuated in place")
	}
}

func TestCheckTimeAccumulates(t *testing.T) {
	ResetCheckTime()
	for i := 0; i < 100; i++ {
		if _, err := Apply(IsString, "x", testBlame); err != nil {
			t.Fatal(err)
		}
	}
	if CheckTime() <= 0 {
		t.Fatal("contract check time not recorded")
	}
}
