package oracle

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/shill"
)

// SoakOptions configure a soak run: N generated program pairs checked
// across K concurrent sessions of one shared machine, the production
// shape a SHILL host serves.
type SoakOptions struct {
	Seed     int64
	Sessions int           // concurrent sessions (default 4)
	Duration time.Duration // stop generating after this long (0: no limit)
	Programs int           // stop after this many programs (0: no limit)
	Minimize bool          // shrink failures on a fresh machine afterwards
	Logf     func(format string, args ...any)

	// Scenario, when non-nil, interleaves declared registry scenarios
	// with the generated programs: ScenarioPct percent of iterations
	// (dealt deterministically, like a loadgen mix) call it instead of
	// generating. The callback runs one scenario — typically three-way
	// under the scenario harness — and returns its name and any
	// failures. It lives behind a hook so the oracle stays independent
	// of the registry; cmd/shill-soak wires internal/scenario in.
	Scenario    func(ctx context.Context, i int64) (name string, failures []string)
	ScenarioPct int // percent of iterations dealt to Scenario (0 with a non-nil Scenario means 25)
}

// SoakFailure is one failing program, reproducible from its seed — or
// one failing interleaved scenario, reproducible by name.
type SoakFailure struct {
	Seed       int64    `json:"seed"`
	Session    int      `json:"session"`
	Ops        int      `json:"ops"`
	Scenario   string   `json:"scenario,omitempty"`
	Violations []string `json:"violations"`
	// Minimized fields are set when SoakOptions.Minimize reproduced and
	// shrank the failure on a fresh exclusive machine.
	MinimizedOps    int    `json:"minimized_ops,omitempty"`
	MinimizedModule string `json:"minimized_module,omitempty"`
}

// SoakReport summarises a soak run; cmd/shill-soak emits it as JSON.
type SoakReport struct {
	Seed         int64         `json:"seed"`
	Sessions     int           `json:"sessions"`
	Programs     int           `json:"programs"`
	ScenarioRuns int           `json:"scenario_runs,omitempty"`
	Ops          int           `json:"ops"`
	Denials      int           `json:"denials_windowed"`
	Divergences  int           `json:"sandbox_only_failures"`
	Elapsed      float64       `json:"elapsed_sec"`
	LiveSockets  int           `json:"live_sockets_at_end"`
	Failures     []SoakFailure `json:"failures,omitempty"`
}

// Ok reports whether the soak saw zero property violations.
func (r *SoakReport) Ok() bool { return len(r.Failures) == 0 }

// SubSeed derives program i's generator seed from the run seed; the
// mixing keeps neighbouring programs decorrelated while staying fully
// reproducible from (seed, i).
func SubSeed(seed int64, i int64) int64 {
	x := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// Soak runs generated conformance pairs across concurrent sessions of
// one shared machine until the duration or program budget is spent,
// then (optionally) minimizes each failure on a fresh exclusive
// machine. The returned report is complete even when ctx is cancelled
// early.
func Soak(ctx context.Context, opts SoakOptions) (*SoakReport, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 4
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m, err := shill.NewMachine()
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := StageProtected(m); err != nil {
		return nil, err
	}
	checker := &Checker{M: m, Exclusive: false}

	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}

	var next atomic.Int64
	var mu sync.Mutex
	report := &SoakReport{Seed: opts.Seed, Sessions: opts.Sessions}

	scenarioPct := opts.ScenarioPct
	if opts.Scenario != nil && scenarioPct == 0 {
		scenarioPct = 25
	}

	results := m.StreamSessions(ctx, opts.Sessions, func(ctx context.Context, s *shill.Session) (*shill.Result, error) {
		for {
			if ctx.Err() != nil {
				return nil, nil
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return nil, nil
			}
			idx := next.Add(1) - 1
			if opts.Programs > 0 && idx >= int64(opts.Programs) {
				return nil, nil
			}
			if opts.Scenario != nil && int(idx%100) < scenarioPct {
				name, fails := opts.Scenario(ctx, idx)
				if ctx.Err() != nil {
					return nil, nil // shutdown mid-scenario; not a verdict
				}
				mu.Lock()
				report.ScenarioRuns++
				if len(fails) > 0 {
					report.Failures = append(report.Failures, SoakFailure{
						Scenario: name, Session: s.Index(), Violations: fails,
					})
					logf("soak: scenario %s FAILED: %v", name, fails)
				}
				mu.Unlock()
				continue
			}
			seed := SubSeed(opts.Seed, idx)
			p := gen.New(seed).Program()
			p.Seed = seed
			inst := Instance{
				Base:     fmt.Sprintf("/gen/s%d/p%d", s.Index(), idx),
				PortBase: SharedPortMin + int(idx%((SharedPortMax-SharedPortMin)/(2*portSlotSpan)))*2*portSlotSpan,
			}
			pr := checker.CheckProgram(ctx, s, p, inst)
			if pr.Canceled {
				return nil, nil // operator shutdown mid-check; not a verdict
			}
			mu.Lock()
			report.Programs++
			report.Ops += pr.Ops
			report.Denials += len(pr.SbxDenials)
			if pr.Divergent != "" {
				report.Divergences++
			}
			if pr.Failed() {
				f := SoakFailure{Seed: seed, Session: s.Index(), Ops: pr.Ops}
				for _, v := range pr.Violations {
					f.Violations = append(f.Violations, v.String())
				}
				report.Failures = append(report.Failures, f)
				logf("soak: seed %d FAILED: %v", seed, pr.Violations)
			} else if report.Programs%200 == 0 {
				logf("soak: %d programs, %d ops, %d windowed denials, %d sandbox-only failures explained",
					report.Programs, report.Ops, report.Denials, report.Divergences)
			}
			mu.Unlock()
		}
	})
	for range results {
	}
	report.Elapsed = time.Since(start).Seconds()
	report.LiveSockets = m.NetLiveSockets()

	if opts.Minimize && ctx.Err() == nil {
		for i := range report.Failures {
			if report.Failures[i].Scenario != "" {
				continue // declared scenarios replay by name, not by seed
			}
			minimizeFailure(ctx, &report.Failures[i], logf)
		}
	}
	return report, nil
}

// minimizeFailure reproduces a failing seed on a fresh exclusive
// machine and shrinks it. A failure that does not reproduce in
// isolation is left unminimized (its seed still replays the soak).
func minimizeFailure(ctx context.Context, f *SoakFailure, logf func(string, ...any)) {
	check := func(p *gen.Program) bool {
		if ctx.Err() != nil {
			return false // cancelled: stop shrinking rather than mis-shrink
		}
		res, err := CheckExclusive(ctx, p)
		return err == nil && res.Failed() && !res.Canceled
	}
	orig := gen.New(f.Seed).Program()
	orig.Seed = f.Seed
	if !check(orig) {
		logf("soak: seed %d does not reproduce in isolation; keeping unminimized", f.Seed)
		return
	}
	minp := Minimize(orig, check)
	f.MinimizedOps = minp.NumOps()
	_, module := minp.Render(gen.RenderConfig{
		Root: "/gen/min/sbx", Console: "/dev/pts/0", PortBase: 21000,
	})
	f.MinimizedModule = module
	logf("soak: seed %d minimized from %d to %d ops", f.Seed, orig.NumOps(), f.MinimizedOps)
}

// CheckExclusive checks one program on a dedicated fresh machine — the
// strongest configuration (whole-image no-escape snapshots, full
// soundness checks). TestGeneratedConformance and the minimizer use it.
func CheckExclusive(ctx context.Context, p *gen.Program) (*PairResult, error) {
	m, err := shill.NewMachine()
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := StageProtected(m); err != nil {
		return nil, err
	}
	s := m.NewSession()
	defer s.Close()
	c := &Checker{M: m, Exclusive: true}
	return c.CheckProgram(ctx, s, p, Instance{Base: "/gen/p0", PortBase: 21000}), nil
}

// CheckExclusiveOn is CheckExclusive on a caller-provided exclusive
// machine (already carrying the protected tree) — the entry point for
// conformance runs on machines restored from snapshot images, where
// booting fresh per pair would waste the warm-restore advantage being
// validated.
func CheckExclusiveOn(ctx context.Context, m *shill.Machine, p *gen.Program) *PairResult {
	s := m.NewSession()
	defer s.Close()
	c := &Checker{M: m, Exclusive: true}
	return c.CheckProgram(ctx, s, p, Instance{Base: "/gen/p0", PortBase: 21000})
}
