// Package oracle is the differential security oracle for generated
// SHILL programs (internal/gen): it executes the capability-sandboxed
// and ambient variants of each program on shill.Machine sessions and
// checks the paper's §2.3 property three ways, per operation:
//
//  1. no-escape — zero filesystem + network effects outside the
//     program's manifest (its workspace root, its port range, the
//     session consoles). The default implementation watches a
//     change window over the run (O(dirty paths)); a walk-and-diff
//     slow path (O(tree), SlowSnapshots) survives as the cross-check
//     that the fast path misses nothing;
//  2. DAC-conjunction — any operation that succeeds under the sandboxed
//     variant also succeeds under the ambient variant: capabilities
//     only ever subtract authority, so MAC can never weaken DAC
//     (generalizing TestMACNeverWeakensDAC from fixed trials to
//     generated programs);
//  3. deny-provenance — the first operation that fails sandboxed but
//     succeeds ambient (a denial attributable to the sandbox, not to
//     DAC) has a matching structured audit.DenyReason naming a
//     privilege absent from the manifest's grant for the denied object;
//     and no capability-layer denial ever claims to lack a privilege
//     the manifest granted.
//
// The ambient run is the reference semantics — the oracle never
// predicts outcomes, it compares them, which is what lets it judge
// arbitrary generated programs (the Smoosh lesson: an executable
// semantics pays off when driven by an observable-behavior oracle).
package oracle

import (
	"context"
	"fmt"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/gen"
	"repro/internal/priv"
	"repro/shill"
)

// UserUID is the unprivileged uid generated programs run as.
const UserUID = shill.UserUID

// ProtectedRoot is the tree outside every program's manifest that
// escape attempts target; StageProtected builds it and the no-escape
// check always covers it.
const ProtectedRoot = "/gen/secret"

// Soak port namespace: program instances on a shared machine draw
// their port bases from [SharedPortMin, SharedPortMax) so listener
// escapes are distinguishable from neighbours' legitimate listeners.
const (
	SharedPortMin = 20000
	SharedPortMax = 52000
	// portSlotSpan is the per-variant port budget; the ambient variant
	// uses PortBase+portSlotSpan so paired variants never collide.
	portSlotSpan = 64
)

// runTimeout bounds one variant's execution; a generated program that
// blocks past it is itself an oracle failure (no generated op may
// block indefinitely).
const runTimeout = 30 * time.Second

// Checker drives program pairs on one machine.
type Checker struct {
	M *shill.Machine
	// Exclusive marks the machine as owned by this checker alone:
	// snapshots then cover the entire image outside the program's own
	// roots, and every capability denial in the run window is held to
	// the soundness check. On a shared (soak) machine, snapshots skip
	// other programs' areas under /gen and denial checks are filtered
	// to objects attributable to this program.
	Exclusive bool

	// SlowSnapshots selects the O(tree) walk-and-diff implementation of
	// the no-escape check instead of the default O(dirty) change-window
	// fast path. The two are equivalent on every verdict the oracle
	// reports; the equivalence test runs both to prove it, and the slow
	// path remains the independent cross-check of the fast one.
	SlowSnapshots bool

	// tamper, when set, runs after the sandboxed variant finishes and
	// before its post-run no-escape check — a deterministic seam the
	// oracle's own tests use to prove the check actually fires.
	tamper func()
}

// Instance places one program check on the machine: a base directory
// (the sandboxed variant runs under Base/sbx, the ambient under
// Base/amb) and a port base for the program's abstract slots.
type Instance struct {
	Base     string
	PortBase int
}

// Violation is one property failure.
type Violation struct {
	Property string // "no-escape", "conjunction", "deny-provenance", "harness"
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// PairResult reports one checked program pair.
type PairResult struct {
	Seed       int64
	Ops        int
	Violations []Violation
	SbxConsole string
	AmbConsole string
	SbxDenials []*shill.DenyReason
	Divergent  string // first sandbox-only failing op label, if any
	// Canceled marks a check aborted by the caller's context — its
	// (partial) outcome is not a verdict and must not be reported as a
	// property failure.
	Canceled bool
}

// Failed reports whether any property was violated.
func (r *PairResult) Failed() bool { return len(r.Violations) > 0 }

// StageProtected builds the protected tree escape attempts target. It
// is idempotent; every machine the oracle drives stages it once.
func StageProtected(m *shill.Machine) error {
	if err := m.MkdirAll(ProtectedRoot, 0o755, 0); err != nil {
		return err
	}
	if err := m.WriteFile(ProtectedRoot+"/leak.txt", []byte("TOP-SECRET"), 0o644, 0); err != nil {
		return err
	}
	return m.WriteFile(ProtectedRoot+"/shadow", []byte("root-only"), 0o600, 0)
}

// stageWorkspace builds one variant's workspace per the manifest.
func (c *Checker) stageWorkspace(root string, man *gen.Manifest) error {
	if err := c.M.MkdirAll(root, 0o755, UserUID); err != nil {
		return err
	}
	for _, e := range man.Stage {
		uid := UserUID
		if e.Root {
			uid = 0
		}
		path := root + "/" + e.Rel
		if e.Dir {
			if err := c.M.MkdirAll(path, e.Mode, uid); err != nil {
				return err
			}
			continue
		}
		if err := c.M.WriteFile(path, []byte(e.Data), e.Mode, uid); err != nil {
			return err
		}
	}
	return nil
}

// skipFor returns the no-escape skip predicate for one variant: the
// paths the check cannot reason about. In exclusive mode that is only
// the currently-running variant's root and the session consoles; in
// shared mode also everything under /gen except the protected tree
// (other programs legitimately churn their own areas under /gen
// concurrently). The predicate is subtree-closed — skipping a
// directory skips everything under it — which is what lets SnapshotFS
// prune skipped subtrees and the fast path filter touched paths
// individually, and still agree.
func (c *Checker) skipFor(activeRoot string) func(path string) bool {
	return func(path string) bool {
		if path == activeRoot || strings.HasPrefix(path, activeRoot+"/") {
			return true
		}
		if path == "/dev/pts" || strings.HasPrefix(path, "/dev/pts/") {
			return true
		}
		if !c.Exclusive {
			// Shared machine: the only paths under /gen this checker can
			// reason about are the protected tree's.
			if strings.HasPrefix(path, "/gen/") && !underProtected(path) {
				return true
			}
		}
		return false
	}
}

// snapshot captures the no-escape-relevant filesystem state by walking
// the whole image — the slow path.
func (c *Checker) snapshot(activeRoot string) map[string]string {
	return c.M.SnapshotFS(c.skipFor(activeRoot))
}

// filterEscapes reduces a change window's touched paths to the ones the
// no-escape property covers, formatted for the violation message. The
// window is conservative — it reports where writes landed, not whether
// content ended up different — but a benign variant performs no writes
// at all outside its manifest, so "touched" and "changed" coincide on
// every verdict.
func (c *Checker) filterEscapes(touched []string, activeRoot string) []string {
	skip := c.skipFor(activeRoot)
	var out []string
	for _, p := range touched {
		if skip(p) {
			continue
		}
		out = append(out, "touched "+p)
	}
	sort.Strings(out)
	return out
}

func underProtected(path string) bool {
	return path == ProtectedRoot || strings.HasPrefix(path, ProtectedRoot+"/")
}

// diffSnapshots reports paths whose fingerprint changed, appeared, or
// vanished between two snapshots.
func diffSnapshots(before, after map[string]string) []string {
	var out []string
	for path, was := range before {
		now, ok := after[path]
		switch {
		case !ok:
			out = append(out, "removed "+path)
		case now != was:
			out = append(out, "altered "+path)
		}
	}
	for path := range after {
		if _, ok := before[path]; !ok {
			out = append(out, "created "+path)
		}
	}
	sort.Strings(out)
	return out
}

// newListeners returns after-run listeners that were not present
// before the run and are not permitted by the program's port range.
func (c *Checker) newListeners(before, after []string, portBase, slots int) []string {
	prev := make(map[string]struct{}, len(before))
	for _, l := range before {
		prev[l] = struct{}{}
	}
	allowed := make(map[string]struct{}, slots)
	for s := 0; s < slots; s++ {
		allowed[fmt.Sprintf("ip!%d", portBase+s)] = struct{}{}
	}
	var out []string
	for _, l := range after {
		if _, ok := prev[l]; ok {
			continue
		}
		if _, ok := allowed[l]; ok {
			continue
		}
		if !c.Exclusive && sharedRangeListener(l) {
			continue // a neighbour's legitimate listener on the shared machine
		}
		out = append(out, l)
	}
	return out
}

func sharedRangeListener(l string) bool {
	var port int
	if _, err := fmt.Sscanf(l, "ip!%d", &port); err != nil {
		return false
	}
	return port >= SharedPortMin && port < SharedPortMax
}

// CheckProgram stages, runs, and checks one program pair on the given
// session. The session is reused across calls; the instance's Base and
// PortBase must be unique per call on a shared machine. The staged
// trees are removed afterwards so long soaks don't grow the image.
func (c *Checker) CheckProgram(ctx context.Context, s *shill.Session, p *gen.Program, inst Instance) *PairResult {
	res := &PairResult{Seed: p.Seed, Ops: p.NumOps()}
	man := &p.Manifest
	if man.Ports > portSlotSpan {
		// The paired-variant port layout (ambient at PortBase+portSlotSpan,
		// soak instances strided 2*portSlotSpan apart) relies on this
		// bound; fail loudly instead of producing baffling listener
		// overlaps if the generator ever outgrows it.
		res.Violations = append(res.Violations, Violation{"harness",
			fmt.Sprintf("program uses %d port slots, exceeding the %d-slot layout", man.Ports, portSlotSpan)})
		return res
	}

	sbxRoot, ambRoot := inst.Base+"/sbx", inst.Base+"/amb"
	defer c.M.RemoveTree(inst.Base)

	type variant struct {
		root     string
		portBase int
		ambient  bool
	}
	variants := []variant{
		{sbxRoot, inst.PortBase, false},
		{ambRoot, inst.PortBase + portSlotSpan, true},
	}

	var consoles [2]string
	var denials [2][]*shill.DenyReason
	var runErrs [2]error
	var sbxSeqBefore uint64
	for i, v := range variants {
		if err := c.stageWorkspace(v.root, man); err != nil {
			res.Violations = append(res.Violations,
				Violation{"harness", fmt.Sprintf("staging %s: %v", v.root, err)})
			return res
		}
		driver, module := p.Render(gen.RenderConfig{
			Root: v.root, Console: s.ConsolePath(),
			PortBase: v.portBase, Ambient: v.ambient,
		})
		var fsBefore map[string]string
		var win *shill.FSWindow
		if c.SlowSnapshots {
			fsBefore = c.snapshot(v.root)
		} else {
			win = c.M.OpenFSWindow()
		}
		netBefore := c.M.NetListeners()
		if !v.ambient {
			sbxSeqBefore = c.M.AuditSeq()
		}

		rctx, cancel := context.WithTimeout(ctx, runTimeout)
		r, err := s.Run(rctx, shill.Script{
			Name:     "gen_driver.ambient",
			Source:   driver,
			Resolver: shill.MapResolver{"gen.cap": module},
		})
		cancel()
		runErrs[i] = err
		if r != nil {
			consoles[i] = r.Console
			denials[i] = r.Denials
		}
		if c.tamper != nil && !v.ambient {
			c.tamper()
		}

		// Property 1: no-escape, checked per variant so a sandboxed
		// escape cannot hide behind the ambient run's legitimate churn.
		var diff []string
		if c.SlowSnapshots {
			diff = diffSnapshots(fsBefore, c.snapshot(v.root))
		} else {
			touched := win.Touched()
			win.Close()
			diff = c.filterEscapes(touched, v.root)
		}
		if len(diff) > 0 {
			res.Violations = append(res.Violations, Violation{"no-escape",
				fmt.Sprintf("%s variant changed state outside its manifest: %s",
					variantName(v.ambient), strings.Join(head(diff, 6), "; "))})
		}
		if leaks := c.newListeners(netBefore, c.M.NetListeners(), v.portBase, man.Ports); len(leaks) > 0 {
			res.Violations = append(res.Violations, Violation{"no-escape",
				fmt.Sprintf("%s variant left listeners outside its port range: %v",
					variantName(v.ambient), leaks)})
		}
	}
	res.SbxConsole, res.AmbConsole = consoles[0], consoles[1]
	res.SbxDenials = denials[0]

	// Generated programs are defensively rendered: every fallible op is
	// syserror-guarded, so a hard run error in either variant means the
	// harness (or the interpreter) broke, not the program — unless the
	// caller's own context was cancelled (operator shutdown), which is
	// no verdict at all.
	if ctx.Err() != nil {
		res.Canceled = true
		res.Violations = nil
		return res
	}
	for i, err := range runErrs {
		if err != nil {
			res.Violations = append(res.Violations, Violation{"harness",
				fmt.Sprintf("%s variant aborted: %v", variantName(i == 1), err)})
		}
	}
	if runErrs[0] != nil || runErrs[1] != nil {
		return res
	}

	sbxOrder, sbxTok := parseStatuses(consoles[0])
	_, ambTok := parseStatuses(consoles[1])

	// Properties 2 and 3 are judged at the FIRST divergent op only: up
	// to it the two workspaces hold identical state (same staged tree,
	// same op sequence, same outcomes), so a differing outcome there is
	// attributable purely to the authority difference. Past it the
	// states legitimately drift (an op denied sandboxed but performed
	// ambient changes what later ops see), and comparisons stop meaning
	// anything.
	for _, label := range sbxOrder {
		st, at := sbxTok[label], ambTok[label]
		if at == "" {
			// The ambient run never reached this op. Since the runs agree
			// up to here, this can only happen if a guard's nesting
			// structure itself diverged at this very op — treat it as the
			// first divergence with an unreached ambient side.
			break
		}
		if okToken(st) == okToken(at) {
			continue
		}
		res.Divergent = label
		if okToken(st) {
			// Property 2: DAC-conjunction. The sandboxed run performed an
			// operation the same user's ambient authority refused.
			res.Violations = append(res.Violations, Violation{"conjunction",
				fmt.Sprintf("%s succeeded sandboxed (%s) but failed ambient (%s): the sandbox exceeded the user's ambient authority", label, st, at)})
		} else if !c.hasQualifyingDenial(denials[0], man, sbxRoot, s.ConsolePath()) &&
			!c.hasQualifyingDenial(c.retainedDenials(sbxSeqBefore), man, sbxRoot, s.ConsolePath()) {
			// Property 3: deny-provenance. A sandbox-only failure must be
			// explained by an audited denial naming a privilege (or
			// object) absent from the manifest. The Result's window reads
			// the small log-wide denial ring, which a denial-heavy
			// neighbour burst can overrun on a shared machine, so on a
			// miss we re-query the full retained log (session deny
			// side-rings included) before declaring a violation.
			res.Violations = append(res.Violations, Violation{"deny-provenance",
				fmt.Sprintf("%s failed only under the sandbox, but no audited denial names a privilege absent from the manifest (%d denials in window)",
					label, len(denials[0]))})
		}
		break
	}

	// Property 3b (soundness): no capability-layer denial in the
	// sandboxed window may claim to lack a privilege the manifest
	// granted for that object — attenuation must be exact. On a shared
	// machine the window can contain neighbours' denials, so only
	// objects provably this program's (paths under its root) are held
	// to the check there; an exclusive machine checks every denial.
	for _, d := range denials[0] {
		d.Resolve() // force lazily-described objects before field reads
		if d.Layer != audit.LayerCapability {
			continue
		}
		if !c.Exclusive && !underRoot(d.Object, sbxRoot) {
			continue
		}
		granted := grantFor(d.Object, man, sbxRoot, s.ConsolePath())
		if over := d.Missing.Intersect(granted); !over.Empty() {
			res.Violations = append(res.Violations, Violation{"deny-provenance",
				fmt.Sprintf("capability denial for %q on %s claims missing privileges %v that the manifest grants",
					d.Op, d.Object, over)})
		}
	}
	return res
}

func underRoot(object, root string) bool {
	return object == root || strings.HasPrefix(object, root+"/")
}

func variantName(ambient bool) string {
	if ambient {
		return "ambient"
	}
	return "sandboxed"
}

func head(xs []string, n int) []string {
	if len(xs) > n {
		return append(xs[:n:n], fmt.Sprintf("... (%d more)", len(xs)-n))
	}
	return xs
}

// parseStatuses extracts "op<k>=token" lines from a run's console in
// first-appearance order. Payload lines ("log<k>=...", executable
// output) are ignored.
func parseStatuses(console string) (order []string, tokens map[string]string) {
	tokens = make(map[string]string)
	for _, line := range strings.Split(console, "\n") {
		if !strings.HasPrefix(line, "op") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			continue
		}
		label, tok := line[:eq], line[eq+1:]
		if !validLabel(label) || tok == "" {
			continue
		}
		if _, seen := tokens[label]; !seen {
			order = append(order, label)
		}
		tokens[label] = tok
	}
	return order, tokens
}

// validLabel accepts op<digits> with an optional one-letter substep
// suffix ("op12", "op12.w").
func validLabel(label string) bool {
	rest := strings.TrimPrefix(label, "op")
	if rest == "" {
		return false
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		if i == 0 || len(rest)-i != 2 {
			return false
		}
		rest = rest[:i]
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return false
		}
	}
	return true
}

// okToken reports whether a status token means success: "ok", or an
// exec verdict with exit status zero.
func okToken(tok string) bool { return tok == "ok" || tok == "x0" }

// grantFor attributes a denial object to one of the manifest's
// parameters and returns that parameter's granted privilege set.
// Objects that belong to no parameter (paths outside the workspace —
// escape targets) were granted nothing.
func grantFor(object string, man *gen.Manifest, root, console string) priv.Set {
	switch {
	case underRoot(object, root):
		return man.Grant
	case object == console:
		return man.OutGrant
	case strings.HasPrefix(object, "socket("):
		return man.SockGrant
	case object == man.Exe || object == path.Base(man.Exe):
		return man.ExeGrant
	default:
		return 0
	}
}

// retainedDenials reconstructs the denial view from the machine's full
// retained audit log (global ring, per-session shards, and every deny
// side-ring) after a sequence point — the deep-retention fallback for
// the cheap per-run window.
func (c *Checker) retainedDenials(since uint64) []*shill.DenyReason {
	events := c.M.AuditEvents(shill.AuditFilter{Verdict: shill.AuditDeny, SinceSeq: since})
	out := make([]*shill.DenyReason, 0, len(events))
	for _, e := range events {
		out = append(out, &shill.DenyReason{
			Layer: e.Layer, Policy: e.Policy, Op: e.Op, Object: e.Object,
			Session: e.Session, Missing: e.Rights, CapID: e.CapID, Seq: e.Seq,
		})
	}
	return out
}

// hasQualifyingDenial reports whether the denial window contains a
// MAC/policy/capability denial naming either an object outside the
// manifest or a privilege absent from the denied object's grant — the
// provenance the §2.3 property demands for every sandbox-only failure.
// (On a shared machine a neighbour's denial could in principle supply
// the explanation — a conservative false pass; false failures are what
// the attribution must never produce.)
func (c *Checker) hasQualifyingDenial(window []*shill.DenyReason, man *gen.Manifest, root, console string) bool {
	for _, d := range window {
		d.Resolve() // force lazily-described objects before field reads
		switch d.Layer {
		case audit.LayerCapability, audit.LayerPolicy, audit.LayerMAC:
		default:
			continue // DAC denials bind both variants equally; they cannot explain a sandbox-only failure
		}
		if d.Missing.Empty() {
			// A denial with no recorded privilege set (e.g. a blanket
			// policy refusal of an ungranted object) qualifies when the
			// object itself is outside the workspace.
			if !underRoot(d.Object, root) {
				return true
			}
			continue
		}
		if d.Missing.Intersect(grantFor(d.Object, man, root, console)).Empty() {
			return true
		}
	}
	return false
}
