package oracle_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/oracle"
)

func countKind(p *gen.Program, k gen.OpKind) int {
	n := 0
	var walk func(ops []*gen.Op)
	walk = func(ops []*gen.Op) {
		for _, o := range ops {
			if o.Kind == k {
				n++
			}
			walk(o.Deps)
		}
	}
	walk(p.Ops)
	return n
}

// TestMinimizeShrinksToCulprit: against a synthetic oracle that fails
// whenever the program contains a lookup op, Minimize must shrink any
// failing program to a script whose op tree is nothing but (one path
// to) the culprit — in particular, at most 10 statements.
func TestMinimizeShrinksToCulprit(t *testing.T) {
	// Find a seed with a rich program containing several lookups.
	var p *gen.Program
	for seed := int64(0); ; seed++ {
		cand := gen.New(seed).Program()
		if countKind(cand, gen.OpLookup) >= 2 && cand.NumOps() >= 8 {
			p = cand
			break
		}
		if seed > 500 {
			t.Fatal("no suitable seed found")
		}
	}
	fails := func(c *gen.Program) bool { return countKind(c, gen.OpLookup) > 0 }
	min := oracle.Minimize(p, fails)
	if !fails(min) {
		t.Fatalf("minimized program no longer fails")
	}
	if got := min.NumOps(); got > 10 {
		t.Fatalf("minimized program has %d ops, want <= 10 (original %d)", got, p.NumOps())
	}
	if countKind(min, gen.OpLookup) != 1 {
		t.Fatalf("minimized program keeps %d lookups, want exactly the culprit", countKind(min, gen.OpLookup))
	}
	// And it still renders to a valid pair.
	driver, module := min.Render(gen.RenderConfig{Root: "/x", Console: "/dev/pts/0", PortBase: 21000})
	if driver == "" || module == "" {
		t.Fatal("minimized program failed to render")
	}
	t.Logf("minimized %d -> %d ops", p.NumOps(), min.NumOps())
}

// TestMinimizeKeepsFailureUnderRealOracle: minimizing against the real
// oracle with a program that does NOT fail returns it unchanged (the
// greedy loop must terminate without shrinking a passing program).
func TestMinimizeNoFailureNoChange(t *testing.T) {
	p := gen.New(11).Program()
	fails := func(c *gen.Program) bool { return false }
	min := oracle.Minimize(p, fails)
	if min.NumOps() != p.NumOps() {
		t.Fatalf("minimize changed a passing program: %d -> %d ops", p.NumOps(), min.NumOps())
	}
}
