package oracle_test

import (
	"context"
	"flag"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/oracle"
)

// genSeed selects the conformance run's base seed. The default is
// fixed, so CI is deterministic; a failure report prints the per-
// program seed, and re-running with -gen.seed=<that seed> -gen.n=1
// replays exactly the failing pair.
var (
	genSeed = flag.Int64("gen.seed", 1, "base seed for generated conformance programs")
	genN    = flag.Int("gen.n", 0, "program pair count (0: 200 in -short, 600 otherwise)")
)

// TestGeneratedConformance is the tentpole property test: ≥200
// generated program pairs (sandboxed vs ambient), each executed on a
// fresh machine and held to all three oracle properties — no-escape,
// DAC-conjunction, and deny-provenance. Every program is reproducible
// from the printed seed alone.
func TestGeneratedConformance(t *testing.T) {
	n := *genN
	if n == 0 {
		n = 600
		if testing.Short() {
			n = 200
		}
	}
	t.Logf("conformance: base seed %d, %d program pairs (reproduce one: -gen.seed=<seed> -gen.n=1)", *genSeed, n)

	ctx := context.Background()
	ops, divergences, denials, failures := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		seed := oracle.SubSeed(*genSeed, int64(i))
		if *genN == 1 {
			seed = *genSeed // replay mode: the flag IS the program seed
		}
		p := gen.New(seed).Program()
		p.Seed = seed
		res, err := oracle.CheckExclusive(ctx, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ops += res.Ops
		denials += len(res.SbxDenials)
		if res.Divergent != "" {
			divergences++
		}
		if res.Failed() {
			failures++
			driver, module := p.Render(gen.RenderConfig{
				Root: "/gen/p0/sbx", Console: "/dev/pts/0", PortBase: 21000,
			})
			t.Errorf("seed %d violates the security property:\n  %v\n--- sandboxed console ---\n%s\n--- ambient console ---\n%s\n--- driver ---\n%s--- module ---\n%s",
				seed, res.Violations, res.SbxConsole, res.AmbConsole, driver, module)
			if failures > 3 {
				t.Fatalf("stopping after %d failing seeds; reproduce one with -gen.seed=%d -gen.n=1", failures, seed)
			}
		}
	}
	t.Logf("conformance: %d pairs, %d ops, %d sandbox-only failures explained by audited denials, %d windowed denials",
		n, ops, divergences, denials)
	if divergences == 0 {
		t.Errorf("no sandbox-only failures across %d programs — the generator stopped exercising denials (oracle would be vacuous)", n)
	}
}

// TestOracleDetectsSeededEscape proves the no-escape check is not
// vacuous: a direct write outside a program's manifest (simulated by
// mutating the protected tree between the oracle's snapshots via a
// tampering op injected at the machine level) must be flagged. We
// simulate the escape by staging a program whose manifest root is A
// while the harness writes under the protected tree mid-run.
func TestOracleDetectsSeededEscape(t *testing.T) {
	p := gen.New(42).Program()
	p.Seed = 42
	res, err := oracle.CheckTampered(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Property == "no-escape" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tampered run produced no no-escape violation: %v", res.Violations)
	}
}

// TestGeneratedConformanceSharedSessions runs a short soak shape in
// process: concurrent sessions on one machine, shared-mode checks. It
// is the -race qualification for the soak path.
func TestGeneratedConformanceSharedSessions(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 12
	}
	report, err := oracle.Soak(context.Background(), oracle.SoakOptions{
		Seed:     *genSeed,
		Sessions: 4,
		Programs: n,
		Duration: 2 * time.Minute,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Fatalf("shared-session soak failed: %+v", report.Failures)
	}
	if report.Programs < n {
		t.Fatalf("soak checked %d programs, want %d", report.Programs, n)
	}
	t.Logf("shared soak: %d programs, %d ops, %d denials, %d live sockets at end",
		report.Programs, report.Ops, report.Denials, report.LiveSockets)
}
