package oracle_test

import (
	"context"
	"flag"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/shill"
)

// genSeed selects the conformance run's base seed. The default is
// fixed, so CI is deterministic; a failure report prints the per-
// program seed, and re-running with -gen.seed=<that seed> -gen.n=1
// replays exactly the failing pair.
var (
	genSeed = flag.Int64("gen.seed", 1, "base seed for generated conformance programs")
	genN    = flag.Int("gen.n", 0, "program pair count (0: 200 in -short, 600 otherwise)")
)

// TestGeneratedConformance is the tentpole property test: ≥200
// generated program pairs (sandboxed vs ambient), each executed on a
// fresh machine and held to all three oracle properties — no-escape,
// DAC-conjunction, and deny-provenance. Every program is reproducible
// from the printed seed alone.
func TestGeneratedConformance(t *testing.T) {
	n := *genN
	if n == 0 {
		n = 600
		if testing.Short() {
			n = 200
		}
	}
	t.Logf("conformance: base seed %d, %d program pairs (reproduce one: -gen.seed=<seed> -gen.n=1)", *genSeed, n)

	ctx := context.Background()
	ops, divergences, denials, failures := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		seed := oracle.SubSeed(*genSeed, int64(i))
		if *genN == 1 {
			seed = *genSeed // replay mode: the flag IS the program seed
		}
		p := gen.New(seed).Program()
		p.Seed = seed
		res, err := oracle.CheckExclusive(ctx, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ops += res.Ops
		denials += len(res.SbxDenials)
		if res.Divergent != "" {
			divergences++
		}
		if res.Failed() {
			failures++
			driver, module := p.Render(gen.RenderConfig{
				Root: "/gen/p0/sbx", Console: "/dev/pts/0", PortBase: 21000,
			})
			t.Errorf("seed %d violates the security property:\n  %v\n--- sandboxed console ---\n%s\n--- ambient console ---\n%s\n--- driver ---\n%s--- module ---\n%s",
				seed, res.Violations, res.SbxConsole, res.AmbConsole, driver, module)
			if failures > 3 {
				t.Fatalf("stopping after %d failing seeds; reproduce one with -gen.seed=%d -gen.n=1", failures, seed)
			}
		}
	}
	t.Logf("conformance: %d pairs, %d ops, %d sandbox-only failures explained by audited denials, %d windowed denials",
		n, ops, divergences, denials)
	if divergences == 0 {
		t.Errorf("no sandbox-only failures across %d programs — the generator stopped exercising denials (oracle would be vacuous)", n)
	}
}

// TestGeneratedConformanceRestored is the tentpole conformance test
// rehosted on snapshot restores: one golden image (fresh machine plus
// the protected tree) is captured once, every program pair runs on a
// machine restored from it, and all three oracle properties must hold
// exactly as they do on scratch-built machines. This is the proof that
// restore produces a machine indistinguishable, to the differential
// oracle, from a cold boot.
func TestGeneratedConformanceRestored(t *testing.T) {
	n := *genN
	if n == 0 {
		n = 600
		if testing.Short() {
			n = 200
		}
	}
	golden, err := shill.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.StageProtected(golden); err != nil {
		t.Fatal(err)
	}
	img, err := golden.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	golden.Close()

	ctx := context.Background()
	ops, divergences, failures := 0, 0, 0
	for i := 0; i < n; i++ {
		seed := oracle.SubSeed(*genSeed, int64(i))
		p := gen.New(seed).Program()
		p.Seed = seed
		m, err := shill.RestoreMachine(img)
		if err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		res := oracle.CheckExclusiveOn(ctx, m, p)
		m.Close()
		ops += res.Ops
		if res.Divergent != "" {
			divergences++
		}
		if res.Failed() {
			failures++
			t.Errorf("seed %d violates the security property on a restored machine:\n  %v\n--- sandboxed console ---\n%s\n--- ambient console ---\n%s",
				seed, res.Violations, res.SbxConsole, res.AmbConsole)
			if failures > 3 {
				t.Fatalf("stopping after %d failing seeds; reproduce one with -gen.seed=%d -gen.n=1", failures, seed)
			}
		}
	}
	t.Logf("restored conformance: %d pairs, %d ops, %d sandbox-only failures explained by audited denials",
		n, ops, divergences)
	if divergences == 0 {
		t.Errorf("no sandbox-only failures across %d restored programs — the oracle would be vacuous", n)
	}
}

// TestNoEscapeFastSlowEquivalence runs the same program pairs through
// both no-escape implementations — the default O(dirty) change-window
// fast path and the O(tree) walk-and-diff slow path — and requires
// identical verdicts: same per-property outcome, same first divergent
// op. The detail strings legitimately differ ("touched" vs "created"),
// so equivalence is judged on what the oracle reports, not how it
// phrases it.
func TestNoEscapeFastSlowEquivalence(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		seed := oracle.SubSeed(*genSeed, int64(1000+i))
		p := gen.New(seed).Program()
		p.Seed = seed
		fast, err := oracle.CheckExclusive(ctx, p)
		if err != nil {
			t.Fatalf("seed %d fast: %v", seed, err)
		}
		p2 := gen.New(seed).Program()
		p2.Seed = seed
		slow, err := oracle.CheckExclusiveSlow(ctx, p2)
		if err != nil {
			t.Fatalf("seed %d slow: %v", seed, err)
		}
		if got, want := propertySet(fast), propertySet(slow); got != want {
			t.Errorf("seed %d: fast path verdict %q, slow path %q\nfast: %v\nslow: %v",
				seed, got, want, fast.Violations, slow.Violations)
		}
		if fast.Divergent != slow.Divergent {
			t.Errorf("seed %d: divergent op differs: fast %q, slow %q", seed, fast.Divergent, slow.Divergent)
		}
	}
}

func propertySet(r *oracle.PairResult) string {
	seen := map[string]bool{}
	for _, v := range r.Violations {
		seen[v.Property] = true
	}
	out := ""
	for _, p := range []string{"no-escape", "conjunction", "deny-provenance", "harness"} {
		if seen[p] {
			out += p + ";"
		}
	}
	return out
}

// TestOracleDetectsSeededEscape proves the no-escape check is not
// vacuous on either implementation: a direct write outside a program's
// manifest (a tampering op injected at the machine level mid-check)
// must be flagged by the default change-window fast path and by the
// walk-and-diff slow path alike.
func TestOracleDetectsSeededEscape(t *testing.T) {
	for name, check := range map[string]func(context.Context, *gen.Program) (*oracle.PairResult, error){
		"fast": oracle.CheckTampered,
		"slow": oracle.CheckTamperedSlow,
	} {
		p := gen.New(42).Program()
		p.Seed = 42
		res, err := check(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, v := range res.Violations {
			if v.Property == "no-escape" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s path: tampered run produced no no-escape violation: %v", name, res.Violations)
		}
	}
}

// TestGeneratedConformanceSharedSessions runs a short soak shape in
// process: concurrent sessions on one machine, shared-mode checks. It
// is the -race qualification for the soak path.
func TestGeneratedConformanceSharedSessions(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 12
	}
	report, err := oracle.Soak(context.Background(), oracle.SoakOptions{
		Seed:     *genSeed,
		Sessions: 4,
		Programs: n,
		Duration: 2 * time.Minute,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Ok() {
		t.Fatalf("shared-session soak failed: %+v", report.Failures)
	}
	if report.Programs < n {
		t.Fatalf("soak checked %d programs, want %d", report.Programs, n)
	}
	t.Logf("shared soak: %d programs, %d ops, %d denials, %d live sockets at end",
		report.Programs, report.Ops, report.Denials, report.LiveSockets)
}
