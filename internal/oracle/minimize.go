package oracle

import "repro/internal/gen"

// CheckFn re-runs a candidate program and reports whether it still
// fails the oracle. Minimize calls it with progressively smaller
// programs; implementations must check each candidate on fresh
// workspace roots (Checker.CheckProgram already stages per call).
type CheckFn func(p *gen.Program) bool

// MaxMinimizeChecks bounds the total re-executions one minimization may
// spend, so shrinking a flaky failure cannot stall a soak run.
const MaxMinimizeChecks = 200

// Minimize greedily shrinks a failing program: it repeatedly tries
// deleting one op subtree at a time (pre-order), keeping every deletion
// after which check still fails, until no single deletion preserves the
// failure or the check budget is exhausted. The result reproduces the
// failure with a (locally) minimal op tree — typically a handful of
// statements naming exactly the operations that disagree.
func Minimize(p *gen.Program, check CheckFn) *gen.Program {
	cur := p.Clone()
	checks := 0
	for {
		shrunk := false
		paths := opPaths(cur)
		for _, path := range paths {
			if checks >= MaxMinimizeChecks {
				return cur
			}
			cand := cur.Clone()
			if !removeAt(cand, path) {
				continue
			}
			checks++
			if check(cand) {
				cur = cand
				shrunk = true
				break // indices shifted; recompute paths
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// opPaths enumerates every op's position as a child-index path, in
// pre-order. Removing earlier (bigger) subtrees first shrinks fastest.
func opPaths(p *gen.Program) [][]int {
	var out [][]int
	var walk func(ops []*gen.Op, prefix []int)
	walk = func(ops []*gen.Op, prefix []int) {
		for i, o := range ops {
			path := append(append([]int(nil), prefix...), i)
			out = append(out, path)
			walk(o.Deps, path)
		}
	}
	walk(p.Ops, nil)
	return out
}

// removeAt deletes the op subtree at the given child-index path.
func removeAt(p *gen.Program, path []int) bool {
	if len(path) == 0 {
		return false
	}
	ops := &p.Ops
	for _, idx := range path[:len(path)-1] {
		if idx >= len(*ops) {
			return false
		}
		ops = &(*ops)[idx].Deps
	}
	i := path[len(path)-1]
	if i >= len(*ops) {
		return false
	}
	*ops = append(append([]*gen.Op(nil), (*ops)[:i]...), (*ops)[i+1:]...)
	return true
}
