package oracle

import (
	"context"

	"repro/internal/gen"
	"repro/shill"
)

// CheckTampered is CheckExclusive with a seeded escape: after the
// sandboxed variant runs, the protected tree is mutated before the
// oracle takes its post-run snapshot. A sound no-escape check must
// flag it — this is the non-vacuousness proof for property 1.
func CheckTampered(ctx context.Context, p *gen.Program) (*PairResult, error) {
	return checkTampered(ctx, p, false)
}

// CheckExclusiveSlow is CheckExclusive with the O(tree) walk-and-diff
// no-escape implementation — the cross-check arm of the fast/slow
// equivalence test.
func CheckExclusiveSlow(ctx context.Context, p *gen.Program) (*PairResult, error) {
	m, err := shill.NewMachine()
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := StageProtected(m); err != nil {
		return nil, err
	}
	s := m.NewSession()
	defer s.Close()
	c := &Checker{M: m, Exclusive: true, SlowSnapshots: true}
	return c.CheckProgram(ctx, s, p, Instance{Base: "/gen/p0", PortBase: 21000}), nil
}

// CheckTamperedSlow is CheckTampered against the O(tree) walk-and-diff
// no-escape implementation, so both paths stay proven non-vacuous.
func CheckTamperedSlow(ctx context.Context, p *gen.Program) (*PairResult, error) {
	return checkTampered(ctx, p, true)
}

func checkTampered(ctx context.Context, p *gen.Program, slow bool) (*PairResult, error) {
	m, err := shill.NewMachine()
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := StageProtected(m); err != nil {
		return nil, err
	}
	s := m.NewSession()
	defer s.Close()
	c := &Checker{M: m, Exclusive: true, SlowSnapshots: slow}
	c.tamper = func() {
		_ = m.WriteFile(ProtectedRoot+"/leak.txt", []byte("TAMPERED"), 0o644, 0)
	}
	return c.CheckProgram(ctx, s, p, Instance{Base: "/gen/p0", PortBase: 21000}), nil
}
