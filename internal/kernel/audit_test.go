package kernel

import (
	"errors"
	"testing"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/priv"
)

// sandboxedProc builds a kernel with one entered session holding only a
// read grant on /data.
func sandboxedProc(t *testing.T) (*Kernel, *Proc) {
	t.Helper()
	k := New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/data/f.txt", []byte("hi"), 0o666, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(0, 0)
	sb, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	grant := func(path string, g *priv.Grant) {
		if err := sb.ShillGrant(k.FS.MustResolve(path), g); err != nil {
			t.Fatal(err)
		}
	}
	grant("/", priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath))
	grant("/data", priv.GrantOf(priv.ReadOnlyDir))
	if err := sb.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	return k, sb
}

// TestPolicyDenyCarriesProvenance is the DenyReason end of the audit
// tentpole: a policy denial must unwrap to EACCES as before AND name
// the layer, operation, object, session, and missing privileges.
func TestPolicyDenyCarriesProvenance(t *testing.T) {
	_, sb := sandboxedProc(t)
	_, err := sb.OpenAt(AtCWD, "/data/f.txt", OWrite, 0)
	if !errors.Is(err, errno.EACCES) {
		t.Fatalf("err = %v, want EACCES", err)
	}
	d := audit.ReasonFor(err)
	if d == nil {
		t.Fatalf("denial carries no DenyReason: %v", err)
	}
	if d.Layer != audit.LayerPolicy || d.Policy != "shill" {
		t.Fatalf("layer/policy = %v/%q", d.Layer, d.Policy)
	}
	if d.Op != "write" {
		t.Fatalf("op = %q", d.Op)
	}
	d.Resolve() // the object path is described lazily; force it for field reads
	if d.Object != "/data/f.txt" {
		t.Fatalf("object = %q", d.Object)
	}
	if d.Session != sb.Session().ID() {
		t.Fatalf("session = %d, want %d", d.Session, sb.Session().ID())
	}
	if !d.Missing.Has(priv.RWrite) {
		t.Fatalf("missing = %v, want +write", d.Missing)
	}
	if d.Seq == 0 {
		t.Fatal("denial was not recorded in the audit log")
	}
}

// TestSystemAndProcDenyReasons covers the formerly bare-EPERM paths:
// Figure 7 system denials and the process-interaction policy.
func TestSystemAndProcDenyReasons(t *testing.T) {
	k, sb := sandboxedProc(t)

	_, err := sb.KenvGet("kernelname")
	if !errors.Is(err, errno.EPERM) {
		t.Fatalf("kenv read = %v, want EPERM", err)
	}
	d := audit.ReasonFor(err)
	if d == nil || d.Layer != audit.LayerPolicy || d.Op != "kenv-read" {
		t.Fatalf("kenv deny reason = %+v", d)
	}

	outsider := k.NewProc(0, 0)
	kerr := sb.Kill(outsider.PID())
	if !errors.Is(kerr, errno.EPERM) {
		t.Fatalf("kill = %v, want EPERM", kerr)
	}
	if d := audit.ReasonFor(kerr); d == nil || d.Op != "proc-signal" {
		t.Fatalf("kill deny reason = %+v", d)
	}
}

// TestDACDenyCarriesProvenance: an open blocked by permission bits (not
// by SHILL) must name DAC as the deciding layer.
func TestDACDenyCarriesProvenance(t *testing.T) {
	k := New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/root-only.txt", []byte("x"), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(1001, 1001)
	_, err := p.OpenAt(AtCWD, "/root-only.txt", ORead, 0)
	if !errors.Is(err, errno.EACCES) {
		t.Fatalf("err = %v", err)
	}
	d := audit.ReasonFor(err)
	if d == nil || d.Layer != audit.LayerDAC {
		t.Fatalf("DAC denial reason = %+v", d)
	}
	d.Resolve()
	if d.Object != "/root-only.txt" {
		t.Fatalf("object = %q", d.Object)
	}
}

// TestSessionAuditTrail checks the session lifecycle events land on the
// session's shard: init, enter, exec, denial, proc exit.
func TestSessionAuditTrail(t *testing.T) {
	k, sb := sandboxedProc(t)
	sb.OpenAt(AtCWD, "/data/f.txt", OWrite, 0) // a denial
	events := k.Audit().Query(audit.Filter{Session: sb.Session().ID()})
	var kinds []audit.Kind
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := map[audit.Kind]bool{audit.KindSpawn: false, audit.KindGrant: false, audit.KindSyscall: false}
	for _, kd := range kinds {
		if _, ok := want[kd]; ok {
			want[kd] = true
		}
	}
	for kd, ok := range want {
		if !ok {
			t.Errorf("session trail missing kind %v (got %v)", kd, kinds)
		}
	}
	for _, e := range events {
		if e.Session != sb.Session().ID() {
			t.Fatalf("foreign session %d event on shard %d", e.Session, sb.Session().ID())
		}
	}
}

// TestAuditDisabledSkipsRecording: with the log disabled the same
// denial still fails with EACCES and a DenyReason, but nothing is
// recorded (and Seq stays 0).
func TestAuditDisabledSkipsRecording(t *testing.T) {
	k, sb := sandboxedProc(t)
	k.Audit().SetEnabled(false)
	before := k.Audit().Emits()
	_, err := sb.OpenAt(AtCWD, "/data/f.txt", OWrite, 0)
	if !errors.Is(err, errno.EACCES) {
		t.Fatalf("err = %v", err)
	}
	d := audit.ReasonFor(err)
	if d == nil || d.Seq != 0 {
		t.Fatalf("disabled-log reason = %+v", d)
	}
	if k.Audit().Emits() != before {
		t.Fatal("disabled log recorded events")
	}
}
