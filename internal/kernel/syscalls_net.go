package kernel

import (
	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/netstack"
)

// Socket creates a stream socket in the given domain. Families beyond IP
// and Unix are denied outright, in and out of sandboxes (Figure 7:
// "Sockets (other): Denied"). Inside a sandbox the SHILL policy requires
// the session to hold a socket-factory capability for the domain
// (§3.1.1), which also determines the privileges labelled onto the new
// socket.
func (p *Proc) Socket(domain netstack.Domain) (int, error) {
	if domain != netstack.DomainIP && domain != netstack.DomainUnix {
		return -1, errno.EPERM
	}
	sock := p.k.Net.NewSocket(domain)
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockCreate); err != nil {
		return -1, err
	}
	desc := newFD(&fdInner{kind: FDSocket, sock: sock, readable: true, writable: true})
	return p.allocFD(desc)
}

func (p *Proc) sockFD(fdn int) (*netstack.Socket, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return nil, err
	}
	if fd.Socket() == nil {
		return nil, errno.EBADF // ENOTSOCK in spirit
	}
	return fd.Socket(), nil
}

// Bind binds the socket to an address.
func (p *Proc) Bind(fdn int, addr string) error {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return err
	}
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockBind); err != nil {
		return err
	}
	return p.k.Net.Bind(sock, addr)
}

// Listen marks the socket as accepting connections.
func (p *Proc) Listen(fdn int) error {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return err
	}
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockListen); err != nil {
		return err
	}
	return p.k.Net.Listen(sock)
}

// Accept blocks for a connection and returns its descriptor. The SHILL
// policy's post-accept hook labels the new endpoint with the listener's
// privileges.
func (p *Proc) Accept(fdn int) (int, error) {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return -1, err
	}
	cred := p.Cred()
	if err := p.k.MAC.SocketCheck(cred, sock, mac.OpSockAccept); err != nil {
		return -1, err
	}
	conn, err := p.k.Net.AcceptIntr(sock, p.IntrChan())
	if err != nil {
		return -1, err
	}
	p.k.MAC.SocketPostAccept(cred, sock, conn)
	desc := newFD(&fdInner{kind: FDSocket, sock: conn, readable: true, writable: true})
	return p.allocFD(desc)
}

// Connect dials a listener.
func (p *Proc) Connect(fdn int, addr string) error {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return err
	}
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockConnect); err != nil {
		return err
	}
	return p.k.Net.Connect(sock, addr)
}

// Send writes to a connected socket.
func (p *Proc) Send(fdn int, buf []byte) (int, error) {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return 0, err
	}
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockSend); err != nil {
		return 0, err
	}
	return p.k.Net.SendIntr(sock, buf, p.IntrChan())
}

// Recv reads from a connected socket; 0, nil means peer close.
func (p *Proc) Recv(fdn int, buf []byte) (int, error) {
	sock, err := p.sockFD(fdn)
	if err != nil {
		return 0, err
	}
	if err := p.k.MAC.SocketCheck(p.Cred(), sock, mac.OpSockRecv); err != nil {
		return 0, err
	}
	return p.k.Net.RecvIntr(sock, buf, p.IntrChan())
}
