package kernel

import (
	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/vfs"
)

// denyDAC builds, records, and returns the structured denial for a
// classic permission-bits failure — the first layer of §2.3's "passes
// the checks performed by the operating system based on the user's
// ambient authority and is also permitted by the capabilities". The
// reverse path lookup only runs on this cold failure path.
func (p *Proc) denyDAC(op string, vn *vfs.Vnode) error {
	path, ok := p.k.FS.PathOf(vn)
	if !ok {
		path = "(unlinked)"
	}
	var sessID uint64
	sh := p.k.aud.Global()
	if s := p.Session(); s != nil {
		sessID, sh = s.id, s.shard
	}
	reason := &audit.DenyReason{
		Layer: audit.LayerDAC, Op: op, Object: path,
		Session: sessID, TraceID: p.traceID.Load(), Errno: errno.EACCES,
	}
	reason.Seq = p.k.aud.Emit(sh, audit.Event{
		Kind: audit.KindSyscall, Verdict: audit.Deny, Layer: audit.LayerDAC,
		Op: op, Object: path, Detail: "UNIX permission bits",
		Trace: reason.TraceID,
	})
	return reason
}
