// Package kernel simulates the FreeBSD kernel surface the paper's SHILL
// module extends: processes with file-descriptor tables, the *at family
// of system calls plus the module's additions (flinkat, funlinkat,
// frenameat, fmkdirat returning an fd, and path), sandbox sessions
// (shill_init / shill_enter), and the SHILL MAC policy module with its
// per-object privilege maps (§3.1.3, §3.2).
//
// The package deliberately separates mechanism the way the paper does:
// the MAC framework (internal/mac) is policy-agnostic; the SHILL policy
// (policy.go) hangs privilege maps off object labels; and system calls
// here invoke DAC, then the framework, then the VFS, in that order — an
// operation succeeds only if it "passes the checks performed by the
// operating system based on the user's ambient authority and is also
// permitted by the capabilities possessed by the sandbox" (§2.3).
package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/netstack"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// BinMain is the entry point of a simulated native executable: it runs
// with a process whose file descriptors 0/1/2 are wired up, receives the
// argument vector, and returns an exit status. Registered binaries stand
// in for the real executables of the paper's case studies; they perform
// all their work through the process's system calls, so MAC checks apply
// to them exactly as to statically compiled programs in a SHILL sandbox.
type BinMain func(p *Proc, argv []string) int

// Ulimits are the per-process resource limits exec may attenuate
// (Figure 7: processes are controlled by ulimit in the language).
type Ulimits struct {
	MaxOpenFiles int   // RLIMIT_NOFILE
	MaxFileSize  int64 // RLIMIT_FSIZE
	MaxProcs     int   // RLIMIT_NPROC (children per process)
}

// DefaultUlimits returns generous defaults.
func DefaultUlimits() Ulimits {
	return Ulimits{MaxOpenFiles: 1024, MaxFileSize: 1 << 34, MaxProcs: 4096}
}

// Kernel owns every simulated kernel subsystem. Locking is
// per-subsystem so independent sandbox sessions never serialise on one
// global lock: the process table, the binary registry, sysctl, kenv,
// kmod, and IPC each carry their own mutex; PID and session-ID
// allocation are atomics; fd tables, sessions, privilege maps, vnodes,
// and sockets all have object-local locks of their own.
type Kernel struct {
	FS  *vfs.FS
	Net *netstack.Stack
	MAC *mac.Framework

	// aud is the always-on capability provenance and audit log
	// (internal/audit): every security-relevant decision lands here,
	// sharded per session. Disable it with Audit().SetEnabled(false)
	// for overhead comparisons.
	aud *audit.Log

	// Ops aggregates per-category kernel-op counts and sampled timings
	// (vfs, netstack, policy checks) for the request-tracing layer; the
	// per-run delta becomes the aggregated op spans in a request trace.
	Ops *trace.OpStats

	Policy *ShillPolicy // nil until InstallShillModule

	procsMu sync.RWMutex
	procs   map[int]*Proc
	nextPID atomic.Int64

	binMu    sync.RWMutex
	binaries map[string]BinMain

	// spawnLatency, when non-zero, is slept in the child before its
	// binary runs: a stand-in for the fork/exec and image-load cost of
	// the paper's real FreeBSD testbed, which the in-memory simulator
	// otherwise collapses to ~0. Parallel-session benchmarks enable it
	// so that throughput scaling reflects overlap of real blocking.
	spawnLatency atomic.Int64

	sysctlMu sync.RWMutex
	sysctl   map[string]string

	kenvMu sync.RWMutex
	kenv   map[string]string

	kmodMu sync.Mutex
	kmods  []string

	ipcMu     sync.Mutex
	posixSems map[string]int
	sysvShm   map[int][]byte

	nextSessionID atomic.Uint64

	// cleaner drains asynchronous session teardown, mirroring "the
	// kernel's asynchronous cleanup of expired SHILL sandbox sessions"
	// that the paper blames for Find's overhead (§4.2). The work channel
	// is never closed (processes may exit concurrently with Shutdown);
	// the done channel stops the worker.
	cleanerCh    chan *Session
	cleanerDone  chan struct{}
	cleanerWG    sync.WaitGroup
	cleanerOnce  sync.Once
	shutdownOnce sync.Once
}

// New creates a kernel with an empty filesystem, a loopback network, an
// empty MAC framework (the paper's "Baseline" configuration), and the
// standard kmods loaded.
func New() *Kernel {
	k := &Kernel{
		FS:          vfs.New(),
		Net:         netstack.New(),
		MAC:         mac.NewFramework(),
		aud:         audit.NewLog(0, 0),
		procs:       make(map[int]*Proc),
		binaries:    make(map[string]BinMain),
		sysctl:      map[string]string{"kern.ostype": "ShillOS", "kern.osrelease": "9.2-SIM", "hw.ncpu": "6"},
		kenv:        map[string]string{"kernelname": "/boot/kernel/kernel"},
		kmods:       []string{"kernel"},
		posixSems:   make(map[string]int),
		sysvShm:     make(map[int][]byte),
		cleanerCh:   make(chan *Session, 1024),
		cleanerDone: make(chan struct{}),
	}
	k.Ops = trace.NewOpStats()
	k.FS.SetOpStats(k.Ops)
	k.Net.SetOpStats(k.Ops)
	return k
}

// SetFS replaces the kernel's filesystem with one booted from an image
// layer (machine restore). It must be called immediately after New,
// before processes, policies, or binaries reference the old filesystem.
func (k *Kernel) SetFS(fs *vfs.FS) {
	fs.SetOpStats(k.Ops)
	k.FS = fs
}

// InstallShillModule loads the SHILL policy module into the MAC
// framework (the "SHILL installed" configuration). It is idempotent.
func (k *Kernel) InstallShillModule() *ShillPolicy {
	k.kmodMu.Lock()
	defer k.kmodMu.Unlock()
	if k.Policy != nil {
		return k.Policy
	}
	k.Policy = newShillPolicy(k)
	if err := k.MAC.Register(k.Policy); err != nil {
		panic("kernel: " + err.Error())
	}
	k.kmods = append(k.kmods, "shill.ko")
	k.startCleaner()
	return k.Policy
}

func (k *Kernel) startCleaner() {
	k.cleanerOnce.Do(func() {
		ch, done := k.cleanerCh, k.cleanerDone
		k.cleanerWG.Add(1)
		go func() {
			defer k.cleanerWG.Done()
			for {
				select {
				case s := <-ch:
					s.teardown()
				case <-done:
					// Drain whatever is already queued, then exit.
					for {
						select {
						case s := <-ch:
							s.teardown()
						default:
							return
						}
					}
				}
			}
		}()
	})
}

// Shutdown stops background workers and tears down the network stack,
// waking any accepters still blocked on listeners. Safe to call
// multiple times and concurrently with exiting processes.
func (k *Kernel) Shutdown() {
	k.shutdownOnce.Do(func() {
		k.Net.Shutdown()
		close(k.cleanerDone)
		k.cleanerWG.Wait()
	})
}

// Audit returns the kernel's audit log.
func (k *Kernel) Audit() *audit.Log { return k.aud }

// SetSpawnLatency configures the simulated per-exec latency (0 disables
// it, the default). See the field comment on Kernel.spawnLatency.
func (k *Kernel) SetSpawnLatency(d time.Duration) { k.spawnLatency.Store(int64(d)) }

// SpawnLatency returns the configured simulated exec latency.
func (k *Kernel) SpawnLatency() time.Duration { return time.Duration(k.spawnLatency.Load()) }

func (k *Kernel) enqueueCleanup(s *Session) {
	if k.Policy == nil {
		s.teardown()
		return
	}
	select {
	case k.cleanerCh <- s:
	default:
		s.teardown() // cleaner saturated or stopped; tear down inline
	}
}

// RegisterBinary installs a simulated executable under the given name.
// Image builders then place files whose contents are "#!bin:<name>\n" to
// make the binary invocable.
func (k *Kernel) RegisterBinary(name string, main BinMain) {
	k.binMu.Lock()
	defer k.binMu.Unlock()
	k.binaries[name] = main
}

// binaryFor resolves the BinMain encoded in an executable vnode.
func (k *Kernel) binaryFor(vn *vfs.Vnode) (BinMain, string, error) {
	data := vn.Bytes()
	const magic = "#!bin:"
	if !strings.HasPrefix(string(data), magic) {
		return nil, "", errno.ENOSYS
	}
	rest := string(data[len(magic):])
	if i := strings.IndexByte(rest, '\n'); i >= 0 {
		rest = rest[:i]
	}
	name := strings.TrimSpace(rest)
	k.binMu.RLock()
	main, ok := k.binaries[name]
	k.binMu.RUnlock()
	if !ok {
		return nil, name, errno.ENOSYS
	}
	return main, name, nil
}

// --- processes ---

// ProcState tracks the lifecycle of a process.
type ProcState int

// Process states.
const (
	ProcRunning ProcState = iota
	ProcZombie
	ProcReaped
)

// Proc is a simulated process. System calls are methods on Proc so each
// call carries its subject credential implicitly, as the trap frame does
// in a real kernel.
type Proc struct {
	k      *Kernel
	pid    int
	parent *Proc

	mu       sync.Mutex
	cred     *mac.Cred
	cwd      *vfs.Vnode
	fds      map[int]*FileDesc
	nextFD   int
	children map[int]*Proc
	state    ProcState
	exitCode int
	done     chan struct{}
	limits   Ulimits
	session  *Session

	// intr is the process's interrupt gate: Interrupt closes the current
	// channel, waking every blocking wait (Wait, socket accept/recv/send)
	// with EINTR — the mechanism context cancellation rides to stop a
	// runaway script without killing its runtime process. ClearInterrupt
	// re-arms the gate so the process is reusable for the next run.
	intrMu sync.Mutex
	intrCh chan struct{}
	intrOn bool

	// traceID names the request trace (internal/trace) the process is
	// currently executing for; deny sites stamp it onto audit events so
	// why-denied can point back into the span tree. Zero means untraced.
	// Children inherit it at Fork; SetTraceID re-stamps a long-lived
	// runtime process between runs.
	traceID atomic.Uint64
}

// SetTraceID tags the process — and its session, if it has entered one —
// with the request trace it is executing for. Zero clears the tag.
func (p *Proc) SetTraceID(id uint64) {
	p.traceID.Store(id)
	if s := p.Session(); s != nil {
		s.trace.Store(id)
	}
}

// TraceID returns the request trace the process is tagged with, 0 if
// untraced.
func (p *Proc) TraceID() uint64 { return p.traceID.Load() }

// IntrChan returns the channel closed when the process is interrupted.
// Blocking system calls select on it; it is replaced (re-armed) by
// ClearInterrupt.
func (p *Proc) IntrChan() <-chan struct{} {
	p.intrMu.Lock()
	defer p.intrMu.Unlock()
	if p.intrCh == nil {
		p.intrCh = make(chan struct{})
	}
	return p.intrCh
}

// Interrupt marks the process interrupted: every in-flight and future
// blocking wait returns EINTR until ClearInterrupt. Idempotent.
func (p *Proc) Interrupt() {
	p.intrMu.Lock()
	defer p.intrMu.Unlock()
	if p.intrOn {
		return
	}
	p.intrOn = true
	if p.intrCh == nil {
		p.intrCh = make(chan struct{})
	}
	close(p.intrCh)
}

// ClearInterrupt re-arms the interrupt gate after a cancelled run, so
// the process (and the session built on it) stays reusable.
func (p *Proc) ClearInterrupt() {
	p.intrMu.Lock()
	defer p.intrMu.Unlock()
	if p.intrOn {
		p.intrOn = false
		p.intrCh = make(chan struct{})
	}
}

// Interrupted reports whether the interrupt gate is currently raised.
func (p *Proc) Interrupted() bool {
	p.intrMu.Lock()
	defer p.intrMu.Unlock()
	return p.intrOn
}

// NewProc creates a top-level process with the given identity, rooted at
// the filesystem root. It models a login shell: no sandbox session, full
// ambient authority subject to DAC.
func (k *Kernel) NewProc(uid, gid int) *Proc {
	p := &Proc{
		k:        k,
		pid:      int(k.nextPID.Add(1)),
		cred:     mac.NewCred(uid, gid),
		cwd:      k.FS.Root(),
		fds:      make(map[int]*FileDesc),
		nextFD:   3, // 0-2 reserved for stdio
		children: make(map[int]*Proc),
		done:     make(chan struct{}),
		limits:   DefaultUlimits(),
	}
	k.procsMu.Lock()
	k.procs[p.pid] = p
	k.procsMu.Unlock()
	return p
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Cred returns the subject credential.
func (p *Proc) Cred() *mac.Cred {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cred
}

// Session returns the SHILL session the process runs in, or nil.
func (p *Proc) Session() *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.session
}

// AuditShard returns the audit shard events from this process should
// land on: the session's shard when the process runs in a session, the
// global shard otherwise. The capability runtime (internal/cap) uses it
// to attribute lineage events.
func (p *Proc) AuditShard() *audit.Shard {
	if s := p.Session(); s != nil {
		return s.shard
	}
	return p.k.aud.Global()
}

// Limits returns the process resource limits.
func (p *Proc) Limits() Ulimits {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limits
}

// SetLimits replaces the resource limits (exec's ulimit parameters).
func (p *Proc) SetLimits(l Ulimits) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.limits = l
}

// SpawnAttr configures Spawn.
type SpawnAttr struct {
	// Stdin, Stdout, Stderr become fds 0, 1, 2 of the child. Nil slots
	// inherit the parent's descriptor (duplicated), if any.
	Stdin, Stdout, Stderr *FileDesc
	// Limits, when non-nil, replaces the child's inherited ulimits.
	Limits *Ulimits
	// Dir, when non-nil, sets the child's working directory.
	Dir *vfs.Vnode
}

// Spawn forks a child and executes the binary in vn with the given
// argument vector, returning the running child. The child inherits the
// parent's credential (and therefore its SHILL session, §3.2.1:
// "Processes spawned by a process in a session are by default placed in
// the same session"). MAC exec and DAC execute checks apply.
func (p *Proc) Spawn(vn *vfs.Vnode, argv []string, attr SpawnAttr) (*Proc, error) {
	child, err := p.Fork()
	if err != nil {
		return nil, err
	}
	if attr.Limits != nil {
		child.SetLimits(*attr.Limits)
	}
	if attr.Dir != nil {
		child.mu.Lock()
		child.cwd = attr.Dir
		child.mu.Unlock()
	}
	child.installStdio(0, attr.Stdin, p)
	child.installStdio(1, attr.Stdout, p)
	child.installStdio(2, attr.Stderr, p)
	if err := child.Exec(vn, argv); err != nil {
		child.Abandon()
		if _, werr := p.Wait(child.pid); werr != nil {
			return nil, err
		}
		return nil, err
	}
	return child, nil
}

func (p *Proc) installStdio(fd int, desc *FileDesc, parent *Proc) {
	if desc == nil {
		parent.mu.Lock()
		inherited := parent.fds[fd]
		parent.mu.Unlock()
		if inherited == nil {
			return
		}
		desc = inherited
	}
	dup := desc.dup()
	p.mu.Lock()
	p.fds[fd] = dup
	p.mu.Unlock()
}

// SpawnWait spawns the binary and blocks until it exits, returning its
// exit status.
func (p *Proc) SpawnWait(vn *vfs.Vnode, argv []string, attr SpawnAttr) (int, error) {
	child, err := p.Spawn(vn, argv, attr)
	if err != nil {
		return -1, err
	}
	return p.Wait(child.pid)
}

// exit terminates the process: closes descriptors, zombifies, and kicks
// session cleanup when the last process of a session exits.
func (p *Proc) exit(code int) {
	p.mu.Lock()
	if p.state != ProcRunning {
		p.mu.Unlock()
		return
	}
	p.state = ProcZombie
	p.exitCode = code
	fds := p.fds
	p.fds = make(map[int]*FileDesc)
	sess := p.session
	p.mu.Unlock()

	for _, fd := range fds {
		fd.close()
	}
	close(p.done)

	if sess != nil {
		if p.k.aud.Enabled() {
			p.k.aud.Emit(sess.shard, audit.Event{
				Kind: audit.KindExit, Op: "proc-exit",
				Detail: fmt.Sprintf("pid %d, status %d", p.pid, code),
			})
		}
		if sess.procExited() {
			p.k.enqueueCleanup(sess)
		}
	}
}

// Exit terminates the calling process with the given status. Binaries
// normally just return from BinMain; Exit supports early termination.
func (p *Proc) Exit(code int) { p.exit(code) }

// Wait blocks until the child with the given pid exits and returns its
// exit status, enforcing the MAC process-wait policy (§3.2.2: a sandboxed
// process cannot wait for a process outside its session). If the waiting
// process is interrupted while the child is still running, Wait returns
// EINTR without reaping; a child that has already exited is always
// reaped, even under interruption, so cancellation cleanup can still
// collect corpses.
func (p *Proc) Wait(pid int) (int, error) {
	p.mu.Lock()
	child, ok := p.children[pid]
	cred := p.cred
	p.mu.Unlock()
	if !ok {
		return -1, errno.ECHILD
	}
	if err := p.k.MAC.ProcCheck(cred, child.Cred(), mac.OpProcWait); err != nil {
		return -1, err
	}
	select {
	case <-child.done:
	default:
		select {
		case <-child.done:
		case <-p.IntrChan():
			return -1, errno.EINTR
		}
	}
	return p.reap(child), nil
}

// reap collects an exited child's status and removes it from the process
// tables.
func (p *Proc) reap(child *Proc) int {
	child.mu.Lock()
	code := child.exitCode
	child.state = ProcReaped
	child.mu.Unlock()

	p.mu.Lock()
	delete(p.children, child.pid)
	p.mu.Unlock()
	p.k.procsMu.Lock()
	delete(p.k.procs, child.pid)
	p.k.procsMu.Unlock()
	return code
}

// KillWait forcibly terminates a child (and its whole descendant tree)
// and reaps it, bypassing the MAC signal check — the kernel-internal
// teardown path a cancelled run uses to not leak processes. It returns
// the child's exit status (137 if the kill was what stopped it).
func (p *Proc) KillWait(pid int) (int, error) {
	p.mu.Lock()
	child, ok := p.children[pid]
	p.mu.Unlock()
	if !ok {
		return -1, errno.ECHILD
	}
	child.KillDescendants()
	child.exit(137)
	<-child.done
	return p.reap(child), nil
}

// KillDescendants terminates and reaps every live descendant of the
// process, leaving the process itself running. Combined with Interrupt
// it implements cancellation: the runtime process survives (the session
// stays reusable) while everything it spawned is torn down.
func (p *Proc) KillDescendants() {
	p.mu.Lock()
	pids := make([]int, 0, len(p.children))
	for pid := range p.children {
		pids = append(pids, pid)
	}
	p.mu.Unlock()
	for _, pid := range pids {
		p.KillWait(pid)
	}
}

// Kill delivers a (simulated) fatal signal to the target process after
// the MAC signal check. Only termination is modelled.
func (p *Proc) Kill(pid int) error {
	p.k.procsMu.RLock()
	target, ok := p.k.procs[pid]
	p.k.procsMu.RUnlock()
	if !ok {
		return errno.ESRCH
	}
	if err := p.k.MAC.ProcCheck(p.Cred(), target.Cred(), mac.OpProcSignal); err != nil {
		return err
	}
	target.exit(137)
	return nil
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state != ProcRunning
}

// Done returns a channel closed when the process exits.
func (p *Proc) Done() <-chan struct{} { return p.done }

// CWD returns the current working directory vnode.
func (p *Proc) CWD() *vfs.Vnode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cwd
}

// --- sysctl / kenv / kmod / IPC (Figure 7 rows) ---

// SysctlGet reads a sysctl value (read-only inside sandboxes).
func (p *Proc) SysctlGet(name string) (string, error) {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpSysctlRead, name); err != nil {
		return "", err
	}
	p.k.sysctlMu.RLock()
	defer p.k.sysctlMu.RUnlock()
	v, ok := p.k.sysctl[name]
	if !ok {
		return "", errno.ENOENT
	}
	return v, nil
}

// SysctlSet writes a sysctl value (denied inside sandboxes).
func (p *Proc) SysctlSet(name, value string) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpSysctlWrite, name); err != nil {
		return err
	}
	cred := p.Cred()
	if cred.UID != 0 {
		return errno.EPERM
	}
	p.k.sysctlMu.Lock()
	defer p.k.sysctlMu.Unlock()
	p.k.sysctl[name] = value
	return nil
}

// KenvGet reads a kernel-environment variable (denied inside sandboxes).
func (p *Proc) KenvGet(name string) (string, error) {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpKenvRead, name); err != nil {
		return "", err
	}
	p.k.kenvMu.RLock()
	defer p.k.kenvMu.RUnlock()
	v, ok := p.k.kenv[name]
	if !ok {
		return "", errno.ENOENT
	}
	return v, nil
}

// KenvSet writes a kernel-environment variable.
func (p *Proc) KenvSet(name, value string) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpKenvWrite, name); err != nil {
		return err
	}
	if p.Cred().UID != 0 {
		return errno.EPERM
	}
	p.k.kenvMu.Lock()
	defer p.k.kenvMu.Unlock()
	p.k.kenv[name] = value
	return nil
}

// KldLoad loads a kernel module. Denied in sandboxes: "no sandboxed
// executable has a capability to unload kernel modules, including the
// module that enforces the MAC policy" (§2.3).
func (p *Proc) KldLoad(name string) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpKmodLoad, name); err != nil {
		return err
	}
	if p.Cred().UID != 0 {
		return errno.EPERM
	}
	p.k.kmodMu.Lock()
	defer p.k.kmodMu.Unlock()
	p.k.kmods = append(p.k.kmods, name)
	return nil
}

// KldUnload unloads a kernel module.
func (p *Proc) KldUnload(name string) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpKmodUnload, name); err != nil {
		return err
	}
	if p.Cred().UID != 0 {
		return errno.EPERM
	}
	p.k.kmodMu.Lock()
	defer p.k.kmodMu.Unlock()
	for i, m := range p.k.kmods {
		if m == name {
			p.k.kmods = append(p.k.kmods[:i], p.k.kmods[i+1:]...)
			return nil
		}
	}
	return errno.ENOENT
}

// KldList returns the loaded module names.
func (p *Proc) KldList() []string {
	p.k.kmodMu.Lock()
	defer p.k.kmodMu.Unlock()
	out := make([]string, len(p.k.kmods))
	copy(out, p.k.kmods)
	return out
}

// SemOpen opens/creates a POSIX named semaphore (denied in sandboxes).
func (p *Proc) SemOpen(name string, value int) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpPosixIPC, name); err != nil {
		return err
	}
	p.k.ipcMu.Lock()
	defer p.k.ipcMu.Unlock()
	if _, ok := p.k.posixSems[name]; !ok {
		p.k.posixSems[name] = value
	}
	return nil
}

// ShmGet creates/attaches a System V shared-memory segment (denied in
// sandboxes).
func (p *Proc) ShmGet(key int, size int) error {
	if err := p.k.MAC.SystemCheck(p.Cred(), mac.OpSysvIPC, fmt.Sprint(key)); err != nil {
		return err
	}
	p.k.ipcMu.Lock()
	defer p.k.ipcMu.Unlock()
	if _, ok := p.k.sysvShm[key]; !ok {
		p.k.sysvShm[key] = make([]byte, size)
	}
	return nil
}

// Procs returns a snapshot of live pids, for tests.
func (k *Kernel) Procs() []int {
	k.procsMu.RLock()
	defer k.procsMu.RUnlock()
	pids := make([]int, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}
