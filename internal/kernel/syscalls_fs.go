package kernel

import (
	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/vfs"
)

// OpenFlags mirror the open(2) flag vocabulary the runtime and binaries
// need.
type OpenFlags int

// Open flags.
const (
	ORead OpenFlags = 1 << iota
	OWrite
	OAppend
	OCreate
	OExcl
	OTrunc
	ODirectory
	ONoFollow
)

// OpenAt opens path relative to dirfd, performing DAC, MAC, and — for
// newly created files — the mac_vnode_post_create hook. It is the
// workhorse syscall for both SHILL's capability runtime and sandboxed
// binaries.
func (p *Proc) OpenAt(dirfd int, path string, flags OpenFlags, mode uint16) (int, error) {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return -1, err
	}
	cred := p.Cred()

	var vn *vfs.Vnode
	created := false
	if flags&OCreate != 0 {
		dir, name, err := p.lookupParent(base, path)
		if err != nil {
			return -1, err
		}
		existing, lerr := p.lookupStep(dir, name)
		switch {
		case lerr == nil:
			if flags&OExcl != 0 {
				return -1, errno.EEXIST
			}
			vn = existing
		case lerr == errno.ENOENT:
			if !dir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
				return -1, p.denyDAC("create", dir)
			}
			if err := p.k.MAC.VnodeCheck(cred, dir, mac.OpVnodeCreateFile, name); err != nil {
				return -1, err
			}
			nv, cerr := p.k.FS.Create(dir, name, mode, cred.UID, cred.GID)
			if cerr != nil {
				return -1, cerr
			}
			p.k.MAC.VnodePostCreate(cred, dir, nv, name, mac.OpVnodeCreateFile)
			vn = nv
			created = true
		default:
			return -1, lerr
		}
	} else {
		vn, err = p.lookupPath(base, path, flags&ONoFollow == 0)
		if err != nil {
			return -1, err
		}
	}
	return p.openVnode(vn, flags, created)
}

// OpenVnode opens an already resolved vnode, as the capability runtime
// does when it holds a vnode reference rather than a path. No lookup
// checks run; open-mode checks still do.
func (p *Proc) OpenVnode(vn *vfs.Vnode, flags OpenFlags) (int, error) {
	return p.openVnode(vn, flags, false)
}

func (p *Proc) openVnode(vn *vfs.Vnode, flags OpenFlags, justCreated bool) (int, error) {
	cred := p.Cred()
	if vn.Type() == vfs.TypeSymlink {
		return -1, errno.ELOOP
	}
	if vn.IsDir() && flags&(OWrite|OAppend|OTrunc) != 0 {
		return -1, errno.EISDIR
	}
	if flags&ODirectory != 0 && !vn.IsDir() {
		return -1, errno.ENOTDIR
	}
	// DAC open-mode checks. A just-created file is always accessible to
	// its creator regardless of the creation mode, per POSIX.
	if !justCreated {
		if flags&ORead != 0 && !vn.Accessible(cred.UID, cred.GID, vfs.ModeRead) {
			return -1, p.denyDAC("open-read", vn)
		}
		if flags&(OWrite|OAppend|OTrunc) != 0 && !vn.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
			return -1, p.denyDAC("open-write", vn)
		}
	}
	// MAC open-mode checks (skipped for the fresh create: post_create
	// labelled the object for the creating session).
	if !justCreated && !vn.IsDir() && vn.Type() != vfs.TypeCharDev {
		if flags&ORead != 0 {
			if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeRead, ""); err != nil {
				return -1, err
			}
		}
		if flags&(OWrite|OAppend) != 0 {
			if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeWrite, ""); err != nil {
				return -1, err
			}
		}
	}
	if flags&OTrunc != 0 {
		if !justCreated {
			if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeTruncate, ""); err != nil {
				return -1, err
			}
		}
		if err := vn.Truncate(0); err != nil {
			return -1, err
		}
	}
	kind := FDFile
	switch vn.Type() {
	case vfs.TypeDir:
		kind = FDDir
	case vfs.TypeCharDev:
		kind = FDDevice
	}
	path, _ := p.k.FS.PathOf(vn)
	desc := newFD(&fdInner{
		kind:       kind,
		vn:         vn,
		readable:   flags&ORead != 0 || vn.IsDir(),
		writable:   flags&(OWrite|OAppend) != 0,
		appendMode: flags&OAppend != 0,
		openPath:   path,
	})
	return p.allocFD(desc)
}

// Read reads from a descriptor, advancing its offset. Per-operation MAC
// checks run for files, pipes, and sockets; character devices are not
// interposed on (§3.2.3 limitation, reproduced).
func (p *Proc) Read(fdn int, buf []byte) (int, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return 0, err
	}
	inner := fd.inner
	if !inner.readable {
		return 0, errno.EBADF
	}
	cred := p.Cred()
	switch inner.kind {
	case FDFile:
		if err := p.k.MAC.VnodeCheck(cred, inner.vn, mac.OpVnodeRead, ""); err != nil {
			return 0, err
		}
		inner.mu.Lock()
		defer inner.mu.Unlock()
		n, err := inner.vn.ReadAt(buf, inner.off)
		inner.off += int64(n)
		return n, err
	case FDDevice:
		return inner.vn.Device().DevRead(buf)
	case FDPipe:
		if !inner.pipeRead {
			return 0, errno.EBADF
		}
		if err := p.k.MAC.PipeCheck(cred, inner.pipe, mac.OpPipeRead); err != nil {
			return 0, err
		}
		return inner.pipe.Read(buf)
	case FDSocket:
		if err := p.k.MAC.SocketCheck(cred, inner.sock, mac.OpSockRecv); err != nil {
			return 0, err
		}
		return p.k.Net.Recv(inner.sock, buf)
	}
	return 0, errno.EBADF
}

// Write writes to a descriptor, honouring append mode and RLIMIT_FSIZE.
func (p *Proc) Write(fdn int, buf []byte) (int, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return 0, err
	}
	inner := fd.inner
	if !inner.writable {
		return 0, errno.EBADF
	}
	cred := p.Cred()
	switch inner.kind {
	case FDFile:
		if err := p.k.MAC.VnodeCheck(cred, inner.vn, mac.OpVnodeWrite, ""); err != nil {
			return 0, err
		}
		if inner.vn.Size()+int64(len(buf)) > p.Limits().MaxFileSize {
			return 0, errno.EFBIG
		}
		if inner.appendMode {
			_, err := inner.vn.Append(buf)
			return len(buf), err
		}
		inner.mu.Lock()
		defer inner.mu.Unlock()
		n, err := inner.vn.WriteAt(buf, inner.off)
		inner.off += int64(n)
		return n, err
	case FDDevice:
		return inner.vn.Device().DevWrite(buf)
	case FDPipe:
		if inner.pipeRead {
			return 0, errno.EBADF
		}
		if err := p.k.MAC.PipeCheck(cred, inner.pipe, mac.OpPipeWrite); err != nil {
			return 0, err
		}
		return inner.pipe.Write(buf)
	case FDSocket:
		if err := p.k.MAC.SocketCheck(cred, inner.sock, mac.OpSockSend); err != nil {
			return 0, err
		}
		return p.k.Net.Send(inner.sock, buf)
	}
	return 0, errno.EBADF
}

// Pread reads at an explicit offset without moving the descriptor
// offset. Only regular files support it.
func (p *Proc) Pread(fdn int, buf []byte, off int64) (int, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return 0, err
	}
	inner := fd.inner
	if inner.kind != FDFile || !inner.readable {
		return 0, errno.EBADF
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), inner.vn, mac.OpVnodeRead, ""); err != nil {
		return 0, err
	}
	return inner.vn.ReadAt(buf, off)
}

// Pwrite writes at an explicit offset.
func (p *Proc) Pwrite(fdn int, buf []byte, off int64) (int, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return 0, err
	}
	inner := fd.inner
	if inner.kind != FDFile || !inner.writable {
		return 0, errno.EBADF
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), inner.vn, mac.OpVnodeWrite, ""); err != nil {
		return 0, err
	}
	if off+int64(len(buf)) > p.Limits().MaxFileSize {
		return 0, errno.EFBIG
	}
	return inner.vn.WriteAt(buf, off)
}

// Seek positions the descriptor offset (whence: 0=set, 1=cur, 2=end).
func (p *Proc) Seek(fdn int, off int64, whence int) (int64, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return 0, err
	}
	inner := fd.inner
	if inner.kind != FDFile && inner.kind != FDDir {
		return 0, errno.EINVAL
	}
	inner.mu.Lock()
	defer inner.mu.Unlock()
	var next int64
	switch whence {
	case 0:
		next = off
	case 1:
		next = inner.off + off
	case 2:
		next = inner.vn.Size() + off
	default:
		return 0, errno.EINVAL
	}
	if next < 0 {
		return 0, errno.EINVAL
	}
	inner.off = next
	return next, nil
}

// MkdirAt creates a directory.
func (p *Proc) MkdirAt(dirfd int, path string, mode uint16) error {
	_, err := p.mkdirCommon(dirfd, path, mode)
	return err
}

// FMkdirAt creates a directory and returns a descriptor for it — the
// fd-returning mkdirat variant the SHILL module adds so the runtime can
// derive a capability for the new directory without a race (§3.1.3).
func (p *Proc) FMkdirAt(dirfd int, path string, mode uint16) (int, error) {
	vn, err := p.mkdirCommon(dirfd, path, mode)
	if err != nil {
		return -1, err
	}
	return p.openVnode(vn, ORead|ODirectory, true)
}

func (p *Proc) mkdirCommon(dirfd int, path string, mode uint16) (*vfs.Vnode, error) {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return nil, err
	}
	dir, name, err := p.lookupParent(base, path)
	if err != nil {
		return nil, err
	}
	cred := p.Cred()
	if !dir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
		return nil, errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, dir, mac.OpVnodeCreateDir, name); err != nil {
		return nil, err
	}
	vn, err := p.k.FS.Mkdir(dir, name, mode, cred.UID, cred.GID)
	if err != nil {
		return nil, err
	}
	p.k.MAC.VnodePostCreate(cred, dir, vn, name, mac.OpVnodeCreateDir)
	return vn, nil
}

// SymlinkAt creates a symbolic link at dirfd/path pointing at target.
func (p *Proc) SymlinkAt(target string, dirfd int, path string) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	dir, name, err := p.lookupParent(base, path)
	if err != nil {
		return err
	}
	cred := p.Cred()
	if !dir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
		return errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, dir, mac.OpVnodeCreateSymlink, name); err != nil {
		return err
	}
	vn, err := p.k.FS.Symlink(dir, name, target, cred.UID, cred.GID)
	if err != nil {
		return err
	}
	p.k.MAC.VnodePostCreate(cred, dir, vn, name, mac.OpVnodeCreateSymlink)
	return nil
}

// ReadlinkAt reads a symlink target.
func (p *Proc) ReadlinkAt(dirfd int, path string) (string, error) {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return "", err
	}
	vn, err := p.lookupPath(base, path, false)
	if err != nil {
		return "", err
	}
	return p.resolveSymlink(vn)
}

// LinkAt installs a hard link: oldpath (resolved against olddirfd) is
// linked at newdirfd/newpath. As the paper notes, the path-based linkat
// cannot be TOCTOU-free; FLinkAt is the fd-based fix.
func (p *Proc) LinkAt(olddirfd int, oldpath string, newdirfd int, newpath string) error {
	oldBase, err := p.baseDir(olddirfd)
	if err != nil {
		return err
	}
	file, err := p.lookupPath(oldBase, oldpath, false)
	if err != nil {
		return err
	}
	return p.linkVnode(file, newdirfd, newpath)
}

// FLinkAt installs a link to the file behind filefd at dirfd/name: the
// TOCTOU-free flinkat(2) the SHILL module adds (§3.1.3).
func (p *Proc) FLinkAt(filefd int, dirfd int, name string) error {
	fd, err := p.FD(filefd)
	if err != nil {
		return err
	}
	if fd.Vnode() == nil {
		return errno.EBADF
	}
	return p.linkVnode(fd.Vnode(), dirfd, name)
}

func (p *Proc) linkVnode(file *vfs.Vnode, newdirfd int, newpath string) error {
	newBase, err := p.baseDir(newdirfd)
	if err != nil {
		return err
	}
	dir, name, err := p.lookupParent(newBase, newpath)
	if err != nil {
		return err
	}
	cred := p.Cred()
	if !dir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
		return errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, file, mac.OpVnodeLink, name); err != nil {
		return err
	}
	if err := p.k.MAC.VnodeCheck(cred, dir, mac.OpVnodeAddLink, name); err != nil {
		return err
	}
	return p.k.FS.Link(dir, name, file)
}

// UnlinkAt removes dirfd/path. rmdir selects AT_REMOVEDIR semantics.
// The MAC check is a disjunction: the subject needs the unlink-file (or
// unlink-dir) privilege on the containing directory, or the unlink
// privilege on the object itself — the latter is how "delete only files
// that were created with the capability" (§5, Capsicum comparison) is
// expressed.
func (p *Proc) UnlinkAt(dirfd int, path string, rmdir bool) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	dir, name, err := p.lookupParent(base, path)
	if err != nil {
		return err
	}
	child, err := p.lookupStep(dir, name)
	if err != nil {
		return err
	}
	if err := p.checkUnlink(dir, child, rmdir); err != nil {
		return err
	}
	return p.k.FS.Unlink(dir, name, rmdir)
}

// FUnlinkAt removes dirfd-relative name only if it still refers to the
// file behind filefd: the funlinkat(2) the SHILL module adds.
func (p *Proc) FUnlinkAt(dirfd int, filefd int, name string) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	fd, err := p.FD(filefd)
	if err != nil {
		return err
	}
	file := fd.Vnode()
	if file == nil {
		return errno.EBADF
	}
	if err := p.checkUnlink(base, file, false); err != nil {
		return err
	}
	return p.k.FS.UnlinkIfSame(base, name, file)
}

func (p *Proc) checkUnlink(dir, child *vfs.Vnode, rmdir bool) error {
	cred := p.Cred()
	if !dir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
		return errno.EACCES
	}
	dirOp := mac.OpVnodeUnlinkFile
	if rmdir || child.IsDir() {
		dirOp = mac.OpVnodeUnlinkDir
	}
	dirErr := p.k.MAC.VnodeCheck(cred, dir, dirOp, "")
	if dirErr == nil {
		return nil
	}
	if p.k.MAC.VnodeCheck(cred, child, mac.OpVnodeUnlinked, "") == nil {
		return nil
	}
	return dirErr
}

// RenameAt moves olddirfd/oldpath to newdirfd/newpath.
func (p *Proc) RenameAt(olddirfd int, oldpath string, newdirfd int, newpath string) error {
	oldBase, err := p.baseDir(olddirfd)
	if err != nil {
		return err
	}
	srcDir, srcName, err := p.lookupParent(oldBase, oldpath)
	if err != nil {
		return err
	}
	src, err := p.lookupStep(srcDir, srcName)
	if err != nil {
		return err
	}
	return p.renameCommon(srcDir, srcName, src, newdirfd, newpath)
}

// FRenameAt atomically unlinks dirfd-relative name if it still refers to
// filefd's file and installs a link in the target directory — the
// frenameat(2) the SHILL module adds.
func (p *Proc) FRenameAt(filefd int, srcdirfd int, srcName string, dstdirfd int, dstName string) error {
	srcBase, err := p.baseDir(srcdirfd)
	if err != nil {
		return err
	}
	fd, err := p.FD(filefd)
	if err != nil {
		return err
	}
	file := fd.Vnode()
	if file == nil {
		return errno.EBADF
	}
	cur, err := p.k.FS.Lookup(srcBase, srcName)
	if err != nil {
		return err
	}
	if cur != file {
		return errno.EINVAL
	}
	return p.renameCommon(srcBase, srcName, file, dstdirfd, dstName)
}

func (p *Proc) renameCommon(srcDir *vfs.Vnode, srcName string, src *vfs.Vnode, dstdirfd int, dstPath string) error {
	dstBase, err := p.baseDir(dstdirfd)
	if err != nil {
		return err
	}
	dstDir, dstName, err := p.lookupParent(dstBase, dstPath)
	if err != nil {
		return err
	}
	cred := p.Cred()
	if !srcDir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) ||
		!dstDir.Accessible(cred.UID, cred.GID, vfs.ModeWrite) {
		return errno.EACCES
	}
	// Removing from the source directory: unlink-file/dir on the dir or
	// rename on the object.
	dirOp := mac.OpVnodeUnlinkFile
	if src.IsDir() {
		dirOp = mac.OpVnodeUnlinkDir
	}
	srcErr := p.k.MAC.VnodeCheck(cred, srcDir, dirOp, "")
	if srcErr != nil {
		if p.k.MAC.VnodeCheck(cred, src, mac.OpVnodeRename, "") != nil {
			return srcErr
		}
	}
	if err := p.k.MAC.VnodeCheck(cred, dstDir, mac.OpVnodeAddLink, dstName); err != nil {
		return err
	}
	return p.k.FS.Rename(srcDir, srcName, dstDir, dstName)
}

// FStat returns metadata for an open descriptor.
func (p *Proc) FStat(fdn int) (vfs.Stat, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return vfs.Stat{}, err
	}
	vn := fd.Vnode()
	if vn == nil {
		return vfs.Stat{}, errno.EBADF
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), vn, mac.OpVnodeStat, ""); err != nil {
		return vfs.Stat{}, err
	}
	return vn.Stat(), nil
}

// FStatAt returns metadata for dirfd/path.
func (p *Proc) FStatAt(dirfd int, path string, followLinks bool) (vfs.Stat, error) {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return vfs.Stat{}, err
	}
	vn, err := p.lookupPath(base, path, followLinks)
	if err != nil {
		return vfs.Stat{}, err
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), vn, mac.OpVnodeStat, ""); err != nil {
		return vfs.Stat{}, err
	}
	return vn.Stat(), nil
}

// ReadDir lists an open directory's entries.
func (p *Proc) ReadDir(fdn int) ([]string, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return nil, err
	}
	vn := fd.Vnode()
	if vn == nil || !vn.IsDir() {
		return nil, errno.ENOTDIR
	}
	cred := p.Cred()
	if !vn.Accessible(cred.UID, cred.GID, vfs.ModeRead) {
		return nil, errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeReaddir, ""); err != nil {
		return nil, err
	}
	return p.k.FS.ReadDir(vn)
}

// FChmodAt changes permission bits.
func (p *Proc) FChmodAt(dirfd int, path string, mode uint16) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	vn, err := p.lookupPath(base, path, true)
	if err != nil {
		return err
	}
	cred := p.Cred()
	uid, _ := vn.Owner()
	if cred.UID != 0 && cred.UID != uid {
		return errno.EPERM
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeChmod, ""); err != nil {
		return err
	}
	vn.Chmod(mode)
	return nil
}

// FChownAt changes ownership. Only root may change the owner, per
// classic UNIX DAC; the MAC chown check gates sandboxes.
func (p *Proc) FChownAt(dirfd int, path string, uid, gid int) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	vn, err := p.lookupPath(base, path, true)
	if err != nil {
		return err
	}
	cred := p.Cred()
	if cred.UID != 0 {
		return errno.EPERM
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeChown, ""); err != nil {
		return err
	}
	vn.Chown(uid, gid)
	return nil
}

// UtimesAt updates a file's access and modification times. The
// simulated VFS stamps "now"; owners and root may touch.
func (p *Proc) UtimesAt(dirfd int, path string) error {
	base, err := p.baseDir(dirfd)
	if err != nil {
		return err
	}
	vn, err := p.lookupPath(base, path, true)
	if err != nil {
		return err
	}
	cred := p.Cred()
	uid, _ := vn.Owner()
	if cred.UID != 0 && cred.UID != uid {
		return errno.EPERM
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeUtimes, ""); err != nil {
		return err
	}
	// Touch via a zero-length append, which updates mtime.
	_, err = vn.Append(nil)
	return err
}

// Truncate truncates an open descriptor's file to the given size.
func (p *Proc) Truncate(fdn int, size int64) error {
	fd, err := p.FD(fdn)
	if err != nil {
		return err
	}
	vn := fd.Vnode()
	if vn == nil || !fd.Writable() {
		return errno.EBADF
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), vn, mac.OpVnodeTruncate, ""); err != nil {
		return err
	}
	return vn.Truncate(size)
}

// Chdir changes the working directory by path.
func (p *Proc) Chdir(path string) error {
	vn, err := p.lookupPath(p.CWD(), path, true)
	if err != nil {
		return err
	}
	return p.fchdirVnode(vn)
}

// FChdir changes the working directory to an open directory fd.
func (p *Proc) FChdir(fdn int) error {
	fd, err := p.FD(fdn)
	if err != nil {
		return err
	}
	vn := fd.Vnode()
	if vn == nil {
		return errno.EBADF
	}
	return p.fchdirVnode(vn)
}

func (p *Proc) fchdirVnode(vn *vfs.Vnode) error {
	if !vn.IsDir() {
		return errno.ENOTDIR
	}
	cred := p.Cred()
	if !vn.Accessible(cred.UID, cred.GID, vfs.ModeExec) {
		return errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeChdir, ""); err != nil {
		return err
	}
	p.mu.Lock()
	p.cwd = vn
	p.mu.Unlock()
	return nil
}

// Path implements the path(2) syscall the SHILL module adds: it
// retrieves an accessible path for the descriptor from the filesystem
// lookup cache, falling back to the last path the object was opened at
// (§3.1.3).
func (p *Proc) Path(fdn int) (string, error) {
	fd, err := p.FD(fdn)
	if err != nil {
		return "", err
	}
	vn := fd.Vnode()
	if vn == nil {
		return "", errno.EBADF
	}
	if err := p.k.MAC.VnodeCheck(p.Cred(), vn, mac.OpVnodePathLookup, ""); err != nil {
		return "", err
	}
	if path, ok := p.k.FS.PathOf(vn); ok {
		return path, nil
	}
	if fd.OpenPath() != "" {
		return fd.OpenPath(), nil
	}
	return "", errno.ENOENT
}

// MakePipe creates a pipe and returns (readFD, writeFD).
func (p *Proc) MakePipe() (int, int, error) {
	pipe := vfs.NewPipe()
	r := newFD(&fdInner{kind: FDPipe, pipe: pipe, pipeRead: true, readable: true})
	w := newFD(&fdInner{kind: FDPipe, pipe: pipe, writable: true})
	rfd, err := p.allocFD(r)
	if err != nil {
		return -1, -1, err
	}
	wfd, err := p.allocFD(w)
	if err != nil {
		p.Close(rfd)
		return -1, -1, err
	}
	return rfd, wfd, nil
}
