package kernel

import (
	"strings"

	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/vfs"
)

// maxSymlinkDepth bounds symlink chains, as MAXSYMLINKS does.
const maxSymlinkDepth = 32

// lookupStep resolves one path component inside dir on behalf of p,
// running DAC search permission, the MAC lookup check, and — on success —
// the mac_vnode_post_lookup hook that lets the SHILL policy propagate
// privileges to the child (§3.2.2). This is the hot path the Figure 11
// microbenchmarks measure: overhead grows linearly with the number of
// lookup steps.
func (p *Proc) lookupStep(dir *vfs.Vnode, comp string) (*vfs.Vnode, error) {
	if !dir.IsDir() {
		return nil, errno.ENOTDIR
	}
	cred := p.Cred()
	if !dir.Accessible(cred.UID, cred.GID, vfs.ModeExec) {
		return nil, errno.EACCES
	}
	if err := p.k.MAC.VnodeCheck(cred, dir, mac.OpVnodeLookup, comp); err != nil {
		return nil, err
	}
	child, err := p.k.FS.Lookup(dir, comp)
	if err != nil {
		return nil, err
	}
	p.k.MAC.VnodePostLookup(cred, dir, child, comp)
	return child, nil
}

// resolveSymlink reads a symlink's target after the MAC read-symlink
// check and DAC read permission.
func (p *Proc) resolveSymlink(link *vfs.Vnode) (string, error) {
	cred := p.Cred()
	if err := p.k.MAC.VnodeCheck(cred, link, mac.OpVnodeReadSymlink, ""); err != nil {
		return "", err
	}
	return link.Readlink()
}

// lookupPath resolves path relative to base (or the root for absolute
// paths), following intermediate symlinks always and the final symlink
// only when followFinal is set.
func (p *Proc) lookupPath(base *vfs.Vnode, path string, followFinal bool) (*vfs.Vnode, error) {
	return p.lookupPathDepth(base, path, followFinal, 0)
}

func (p *Proc) lookupPathDepth(base *vfs.Vnode, path string, followFinal bool, depth int) (*vfs.Vnode, error) {
	if depth > maxSymlinkDepth {
		return nil, errno.ELOOP
	}
	if path == "" {
		return nil, errno.ENOENT
	}
	cur := base
	if strings.HasPrefix(path, "/") {
		cur = p.k.FS.Root()
	}
	comps := splitComponents(path)
	for i, comp := range comps {
		child, err := p.lookupStep(cur, comp)
		if err != nil {
			return nil, err
		}
		if child.Type() == vfs.TypeSymlink {
			last := i == len(comps)-1
			if last && !followFinal {
				return child, nil
			}
			target, err := p.resolveSymlink(child)
			if err != nil {
				return nil, err
			}
			resolved, err := p.lookupPathDepth(cur, target, true, depth+1)
			if err != nil {
				return nil, err
			}
			child = resolved
		}
		cur = child
	}
	return cur, nil
}

// lookupParent resolves everything but the final component of path and
// returns the parent directory plus the final name. The final component
// must not be empty, ".", or ".." (creation sites need a real name).
func (p *Proc) lookupParent(base *vfs.Vnode, path string) (*vfs.Vnode, string, error) {
	if path == "" {
		return nil, "", errno.ENOENT
	}
	cur := base
	if strings.HasPrefix(path, "/") {
		cur = p.k.FS.Root()
	}
	comps := splitComponents(path)
	if len(comps) == 0 {
		return nil, "", errno.EEXIST // path was "/" or "."
	}
	name := comps[len(comps)-1]
	if name == "." || name == ".." {
		return nil, "", errno.EINVAL
	}
	for _, comp := range comps[:len(comps)-1] {
		child, err := p.lookupStep(cur, comp)
		if err != nil {
			return nil, "", err
		}
		if child.Type() == vfs.TypeSymlink {
			target, err := p.resolveSymlink(child)
			if err != nil {
				return nil, "", err
			}
			child, err = p.lookupPathDepth(cur, target, true, 1)
			if err != nil {
				return nil, "", err
			}
		}
		cur = child
	}
	if !cur.IsDir() {
		return nil, "", errno.ENOTDIR
	}
	return cur, name, nil
}

func splitComponents(path string) []string {
	raw := strings.Split(path, "/")
	comps := raw[:0]
	for _, c := range raw {
		if c != "" {
			comps = append(comps, c)
		}
	}
	return comps
}

// baseDir interprets an AT-style dirfd: AtCWD means the process working
// directory; otherwise the fd must be an open directory.
func (p *Proc) baseDir(dirfd int) (*vfs.Vnode, error) {
	if dirfd == AtCWD {
		return p.CWD(), nil
	}
	fd, err := p.FD(dirfd)
	if err != nil {
		return nil, err
	}
	vn := fd.Vnode()
	if vn == nil || !vn.IsDir() {
		return nil, errno.ENOTDIR
	}
	return vn, nil
}

// AtCWD is the AT_FDCWD sentinel for *at syscalls.
const AtCWD = -100
