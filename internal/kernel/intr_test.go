package kernel

import (
	"errors"
	"testing"
	"time"

	"repro/internal/errno"
)

// intrWorld builds a kernel with one registered binary that runs until
// its process is killed.
func intrWorld(t *testing.T) (*Kernel, *Proc) {
	t.Helper()
	k := New()
	k.InstallShillModule()
	t.Cleanup(k.Shutdown)
	k.RegisterBinary("spin", func(p *Proc, argv []string) int {
		for {
			if p.Exited() {
				return 0
			}
			time.Sleep(time.Millisecond)
		}
	})
	if _, err := k.FS.WriteFile("/bin/spin", []byte("#!bin:spin\n"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(0, 0)
	return k, p
}

func TestWaitInterrupted(t *testing.T) {
	k, p := intrWorld(t)
	vn := k.FS.MustResolve("/bin/spin")
	child, err := p.Spawn(vn, nil, SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, werr := p.Wait(child.PID())
		done <- werr
	}()
	time.Sleep(10 * time.Millisecond)
	p.Interrupt()
	select {
	case err := <-done:
		if !errors.Is(err, errno.EINTR) {
			t.Fatalf("interrupted wait = %v, want EINTR", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait still blocked after Interrupt")
	}
	// The interrupted parent can still clean up: KillWait reaps the
	// child even while the interrupt gate is raised.
	if code, err := p.KillWait(child.PID()); err != nil || code != 137 {
		t.Fatalf("KillWait = %d, %v", code, err)
	}
	p.ClearInterrupt()
	if p.Interrupted() {
		t.Fatal("interrupt gate still raised after ClearInterrupt")
	}
	if len(k.Procs()) != 1 {
		t.Fatalf("process table = %v, want only the parent", k.Procs())
	}
}

func TestWaitReapsExitedChildDespiteInterrupt(t *testing.T) {
	k, p := intrWorld(t)
	vn := k.FS.MustResolve("/bin/spin")
	child, err := p.Spawn(vn, nil, SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	child.Exit(3)
	p.Interrupt()
	defer p.ClearInterrupt()
	code, err := p.Wait(child.PID())
	if err != nil || code != 3 {
		t.Fatalf("Wait on exited child under interrupt = %d, %v; want 3, nil", code, err)
	}
	_ = k
}

func TestKillDescendantsReapsTree(t *testing.T) {
	k, p := intrWorld(t)
	vn := k.FS.MustResolve("/bin/spin")
	for i := 0; i < 3; i++ {
		if _, err := p.Spawn(vn, nil, SpawnAttr{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(k.Procs()); got != 4 {
		t.Fatalf("before: %d procs, want 4", got)
	}
	p.KillDescendants()
	if got := len(k.Procs()); got != 1 {
		t.Fatalf("after KillDescendants: procs = %v, want only the parent", k.Procs())
	}
}

func TestSpawnLatencySleepEndsWithProcess(t *testing.T) {
	k, p := intrWorld(t)
	k.SetSpawnLatency(10 * time.Second)
	vn := k.FS.MustResolve("/bin/spin")
	child, err := p.Spawn(vn, nil, SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	// Killing the child during its simulated exec latency must not leave
	// a goroutine sleeping out the full latency before running the
	// binary on a corpse.
	start := time.Now()
	if _, err := p.KillWait(child.PID()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("kill during spawn latency took %v", elapsed)
	}
}
