package kernel

import (
	"sync"
	"sync/atomic"

	"repro/internal/errno"
	"repro/internal/netstack"
	"repro/internal/vfs"
)

// FDKind distinguishes the object behind a file descriptor.
type FDKind int

// Descriptor kinds.
const (
	FDFile FDKind = iota
	FDDir
	FDDevice
	FDPipe
	FDSocket
)

func (k FDKind) String() string {
	switch k {
	case FDFile:
		return "file"
	case FDDir:
		return "dir"
	case FDDevice:
		return "device"
	case FDPipe:
		return "pipe"
	case FDSocket:
		return "socket"
	}
	return "unknown"
}

// fdInner is the shared open-file description: dup'd descriptors share
// the offset and the close refcount, as POSIX requires.
type fdInner struct {
	kind FDKind

	vn       *vfs.Vnode
	pipe     *vfs.Pipe
	pipeRead bool // which end of the pipe this descriptor is
	sock     *netstack.Socket

	mu  sync.Mutex
	off int64

	readable   bool
	writable   bool
	appendMode bool

	// openPath is the path the object was reachable at when opened; the
	// path(2) syscall falls back to it when the lookup cache misses
	// ("SHILL uses the last known path at which the file was
	// accessible", §3.1.3).
	openPath string

	refs int32
}

// FileDesc is a process's handle on an open-file description.
type FileDesc struct {
	inner  *fdInner
	closed atomic.Bool
}

func newFD(inner *fdInner) *FileDesc {
	inner.refs = 1
	return &FileDesc{inner: inner}
}

// dup returns a descriptor sharing the open-file description.
func (fd *FileDesc) dup() *FileDesc {
	atomic.AddInt32(&fd.inner.refs, 1)
	if fd.inner.kind == FDPipe {
		if fd.inner.pipeRead {
			fd.inner.pipe.AddReader()
		} else {
			fd.inner.pipe.AddWriter()
		}
	}
	return &FileDesc{inner: fd.inner}
}

// close releases this handle; the last release closes the underlying
// pipe end or socket.
func (fd *FileDesc) close() {
	if fd.closed.Swap(true) {
		return
	}
	inner := fd.inner
	if inner.kind == FDPipe {
		if inner.pipeRead {
			inner.pipe.CloseRead()
		} else {
			inner.pipe.CloseWrite()
		}
	}
	if atomic.AddInt32(&inner.refs, -1) > 0 {
		return
	}
	if inner.kind == FDSocket && inner.sock != nil {
		inner.sock.Stack().Close(inner.sock)
	}
}

// Kind returns the descriptor kind.
func (fd *FileDesc) Kind() FDKind { return fd.inner.kind }

// Vnode returns the underlying vnode (files, dirs, devices) or nil.
func (fd *FileDesc) Vnode() *vfs.Vnode { return fd.inner.vn }

// Pipe returns the underlying pipe, or nil.
func (fd *FileDesc) Pipe() *vfs.Pipe { return fd.inner.pipe }

// PipeReadEnd reports whether a pipe descriptor is the read end.
func (fd *FileDesc) PipeReadEnd() bool { return fd.inner.pipeRead }

// Socket returns the underlying socket, or nil.
func (fd *FileDesc) Socket() *netstack.Socket { return fd.inner.sock }

// Readable reports whether the descriptor was opened for reading.
func (fd *FileDesc) Readable() bool { return fd.inner.readable }

// Writable reports whether the descriptor was opened for writing.
func (fd *FileDesc) Writable() bool { return fd.inner.writable }

// OpenPath returns the path recorded at open time.
func (fd *FileDesc) OpenPath() string { return fd.inner.openPath }

// NewVnodeFD builds a descriptor for a vnode without going through
// OpenAt. The SHILL runtime uses it to hand capability-backed
// descriptors (e.g. a grade log opened append-only) to sandboxed
// processes as stdio.
func NewVnodeFD(vn *vfs.Vnode, readable, writable, appendMode bool) *FileDesc {
	kind := FDFile
	switch vn.Type() {
	case vfs.TypeDir:
		kind = FDDir
	case vfs.TypeCharDev:
		kind = FDDevice
	}
	return newFD(&fdInner{kind: kind, vn: vn, readable: readable, writable: writable, appendMode: appendMode})
}

// NewPipeFD builds a descriptor for one end of a pipe, taking its own
// reference on that end (the owning capability keeps its reference; the
// pipe end closes only when every holder has released).
func NewPipeFD(p *vfs.Pipe, readEnd bool) *FileDesc {
	if readEnd {
		p.AddReader()
	} else {
		p.AddWriter()
	}
	return newFD(&fdInner{kind: FDPipe, pipe: p, pipeRead: readEnd, readable: readEnd, writable: !readEnd})
}

// Release closes a descriptor handle that was never installed in a
// process's table (construction handles used while wiring stdio).
func (fd *FileDesc) Release() { fd.close() }

// SetCWDVnode sets the working directory without access checks; the
// SHILL runtime uses it while configuring a sandbox before shill_enter.
func (p *Proc) SetCWDVnode(vn *vfs.Vnode) {
	p.mu.Lock()
	p.cwd = vn
	p.mu.Unlock()
}

// --- per-process descriptor table ---

// allocFD installs desc at the lowest free descriptor number, honouring
// RLIMIT_NOFILE.
func (p *Proc) allocFD(desc *FileDesc) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.fds) >= p.limits.MaxOpenFiles {
		return -1, errno.EMFILE
	}
	n := 0
	for {
		if _, used := p.fds[n]; !used {
			break
		}
		n++
	}
	p.fds[n] = desc
	return n, nil
}

// FD returns the descriptor for a number, or EBADF.
func (p *Proc) FD(n int) (*FileDesc, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fd, ok := p.fds[n]
	if !ok {
		return nil, errno.EBADF
	}
	return fd, nil
}

// InstallFD places an externally constructed descriptor into the table
// (used by the SHILL runtime to hand capabilities' descriptors to a
// process). It duplicates desc, leaving the caller's handle open.
func (p *Proc) InstallFD(desc *FileDesc) (int, error) {
	return p.allocFD(desc.dup())
}

// SetStdio wires descriptor numbers 0-2, duplicating each non-nil slot.
func (p *Proc) SetStdio(stdin, stdout, stderr *FileDesc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, d := range []*FileDesc{stdin, stdout, stderr} {
		if d == nil {
			continue
		}
		if old, ok := p.fds[i]; ok {
			old.close()
		}
		p.fds[i] = d.dup()
	}
}

// Close closes descriptor n.
func (p *Proc) Close(n int) error {
	p.mu.Lock()
	fd, ok := p.fds[n]
	if ok {
		delete(p.fds, n)
	}
	p.mu.Unlock()
	if !ok {
		return errno.EBADF
	}
	fd.close()
	return nil
}

// Dup duplicates descriptor n onto a fresh number.
func (p *Proc) Dup(n int) (int, error) {
	fd, err := p.FD(n)
	if err != nil {
		return -1, err
	}
	return p.allocFD(fd.dup())
}

// NumOpenFDs reports the size of the descriptor table (tests).
func (p *Proc) NumOpenFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fds)
}
