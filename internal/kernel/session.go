package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/vfs"
)

// Session is a SHILL sandbox session (§3.2.1): the unit that capabilities
// are granted to and that the policy module checks privileges against.
// Processes in one session share its capabilities; sessions are
// hierarchical, and a child session can only ever hold attenuated
// authority relative to its parent.
type Session struct {
	id     uint64
	parent *Session
	k      *Kernel

	entered atomic.Bool

	mu sync.Mutex
	// refs counts reasons the session must stay alive: member processes
	// plus live child sessions. A parent session's privileges must
	// outlive its children, since child grants are checked against them
	// (§3.2.1's hierarchy).
	refs       int
	labeled    []*privMap // privilege maps holding an entry for this session
	sockGrants map[netstack.Domain]*priv.Grant
	torn       bool

	log   *SessionLog
	debug bool

	// shard is the session's audit-log shard, cached at creation so the
	// policy's hot check path emits events without any map lookup.
	shard *audit.Shard

	// trace is the request trace (internal/trace) the session is running
	// under, copied from the initiating process at ShillInit and
	// re-stamped by Proc.SetTraceID between runs of a long-lived runtime
	// process. Deny sites read it to tag audit events.
	trace atomic.Uint64
}

// ID returns the session id.
func (s *Session) ID() uint64 { return s.id }

// Parent returns the parent session, or nil for a top-level sandbox.
func (s *Session) Parent() *Session { return s.parent }

// Entered reports whether shill_enter has been called.
func (s *Session) Entered() bool { return s.entered.Load() }

// Debug reports whether the session auto-grants missing privileges.
func (s *Session) Debug() bool { return s.debug }

// Log returns the session's log, or nil if logging is disabled.
func (s *Session) Log() *SessionLog { return s.log }

// AuditShard returns the session's audit-log shard.
func (s *Session) AuditShard() *audit.Shard { return s.shard }

// isDescendantOf reports whether s is t or a descendant of t.
func (s *Session) isDescendantOf(t *Session) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if cur == t {
			return true
		}
	}
	return false
}

func (s *Session) addProc() { s.addRef() }

func (s *Session) addRef() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

// procExited drops a process reference and reports whether the session
// is now dead (no processes and no live child sessions).
func (s *Session) procExited() bool { return s.decRef() }

func (s *Session) decRef() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refs--
	return s.refs <= 0 && !s.torn
}

// recordLabeled remembers a privilege map holding an entry for this
// session so asynchronous teardown can scrub it (§4.2 attributes part of
// Find's overhead to exactly this cleanup).
func (s *Session) recordLabeled(pm *privMap) {
	s.mu.Lock()
	s.labeled = append(s.labeled, pm)
	s.mu.Unlock()
}

// teardown removes every privilege-map entry for the session, then
// releases its reference on the parent session (which may in turn become
// collectable).
func (s *Session) teardown() {
	s.mu.Lock()
	if s.torn {
		s.mu.Unlock()
		return
	}
	s.torn = true
	labeled := s.labeled
	s.labeled = nil
	s.mu.Unlock()
	for _, pm := range labeled {
		pm.remove(s)
	}
	if s.k.aud.Enabled() {
		s.k.aud.Emit(s.shard, audit.Event{
			Kind: audit.KindExit, Op: "session-teardown",
			Detail: fmt.Sprintf("scrubbed %d privilege maps", len(labeled)),
		})
	}
	if s.parent != nil && s.parent.decRef() {
		s.k.enqueueCleanup(s.parent)
	}
}

// SessionOptions configure ShillInit.
type SessionOptions struct {
	// Debug makes the policy auto-grant privileges instead of denying,
	// recording each auto-grant in the log — the paper's debugging
	// sandbox (§3.2.2 "Debugging").
	Debug bool
	// Logging records grants and denials even outside debug mode.
	Logging bool
}

// ShillInit implements the shill_init system call: it creates a new
// session (a child of the process's current session, if any) and
// associates it with the calling process. The new session has no
// capabilities; grants are accepted until ShillEnter.
func (p *Proc) ShillInit(opts SessionOptions) (*Session, error) {
	if p.k.Policy == nil {
		return nil, errno.ENOSYS // SHILL module not loaded
	}
	p.mu.Lock()
	parentSession := p.session
	cred := p.cred
	p.mu.Unlock()

	s := &Session{
		id:         p.k.nextSessionID.Add(1),
		parent:     parentSession,
		k:          p.k,
		sockGrants: make(map[netstack.Domain]*priv.Grant),
		debug:      opts.Debug,
	}
	s.trace.Store(p.traceID.Load())
	if opts.Debug || opts.Logging || p.k.Policy.logAll.Load() {
		s.log = &SessionLog{}
	}
	s.refs = 1
	// A disabled log allocates no shard: the audit=off configuration
	// must not pay per-spawn ring allocation or the log's creation
	// lock. Emissions tolerate a nil shard (they fall back to the
	// global shard, and are no-ops while the log stays disabled).
	if p.k.aud.Enabled() {
		s.shard = p.k.aud.SessionShard(s.id)
		parentID := uint64(0)
		if parentSession != nil {
			parentID = parentSession.id
		}
		p.k.aud.Emit(s.shard, audit.Event{
			Kind: audit.KindSpawn, Op: "shill-init",
			Detail: fmt.Sprintf("pid %d, parent session %d", p.pid, parentID),
		})
	}

	// The child session holds a reference on its parent: a parent's
	// privileges must remain inspectable while any descendant session
	// can still be granted from them. Take that reference before the
	// process releases its own membership of the old session.
	if parentSession != nil {
		parentSession.addRef()
	}
	p.mu.Lock()
	if p.session != nil {
		old := p.session
		p.mu.Unlock()
		if old.procExited() {
			p.k.enqueueCleanup(old)
		}
		p.mu.Lock()
	}
	p.session = s
	p.mu.Unlock()
	cred.MACLabel().Set(policyName, s)
	return s, nil
}

// ShillGrant implements the grant phase between shill_init and
// shill_enter: it installs a privilege-map entry for the session on the
// object. If the session has a parent session, the grant must be covered
// by the parent's privileges on the same object — "capabilities
// possessed by the parent session can be granted to the new session"
// (§3.2.1) — which makes attenuation the only possible direction.
func (p *Proc) ShillGrant(obj mac.Labeled, g *priv.Grant) error {
	pol := p.k.Policy
	if pol == nil {
		return errno.ENOSYS
	}
	s := p.Session()
	if s == nil {
		return errno.EINVAL
	}
	if s.Entered() {
		return errno.EPERM // grants only accepted before shill_enter
	}
	if s.parent != nil {
		parentGrant := pmOf(obj.MACLabel()).get(s.parent)
		if !parentGrant.Covers(g) {
			return errno.EPERM
		}
	}
	pol.grantObject(s, obj, g)
	return nil
}

// ShillGrantSocketFactory grants the session the right to create and use
// sockets of the given domain with the given privileges — the kernel
// half of SHILL's socket-factory capability (§3.1.1).
func (p *Proc) ShillGrantSocketFactory(domain netstack.Domain, g *priv.Grant) error {
	pol := p.k.Policy
	if pol == nil {
		return errno.ENOSYS
	}
	s := p.Session()
	if s == nil {
		return errno.EINVAL
	}
	if s.Entered() {
		return errno.EPERM
	}
	if s.parent != nil {
		s.parent.mu.Lock()
		parentGrant := s.parent.sockGrants[domain]
		s.parent.mu.Unlock()
		if !parentGrant.Covers(g) {
			return errno.EPERM
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing := s.sockGrants[domain]; existing != nil {
		// Conflicting socket grants are never merged (§3.2.2 "Avoiding
		// privilege amplification"): the first grant stands.
		if s.log != nil {
			s.log.add(LogEntry{Kind: LogDeny, Op: "sock-grant-merge", Object: domain.String()})
		}
		return nil
	}
	s.sockGrants[domain] = g.Clone()
	if s.log != nil {
		s.log.add(LogEntry{Kind: LogGrant, Op: "socket-factory", Object: domain.String(), Rights: g.Rights})
	}
	p.k.aud.Emit(s.shard, audit.Event{
		Kind: audit.KindGrant, Op: "socket-factory",
		Object: "socket(" + domain.String() + ")", Rights: g.Rights,
	})
	return nil
}

// ShillEnter implements the shill_enter system call: from this point the
// session permits only operations its granted capabilities allow.
func (p *Proc) ShillEnter() error {
	if p.k.Policy == nil {
		return errno.ENOSYS
	}
	s := p.Session()
	if s == nil {
		return errno.EINVAL
	}
	s.entered.Store(true)
	p.k.aud.Emit(s.shard, audit.Event{Kind: audit.KindSpawn, Op: "shill-enter"})
	return nil
}

// Fork creates a suspended child process that inherits the parent's
// credential (and thus session), working directory, and limits, but has
// an empty descriptor table. The caller configures it (stdio, session
// syscalls) and then starts it with Exec.
func (p *Proc) Fork() (*Proc, error) {
	p.mu.Lock()
	cred := p.cred
	limits := p.limits
	cwd := p.cwd
	session := p.session
	live := len(p.children) // RLIMIT_NPROC counts live children
	p.mu.Unlock()
	if live >= limits.MaxProcs {
		return nil, errno.EAGAIN
	}

	k := p.k
	child := &Proc{
		k:        k,
		pid:      int(k.nextPID.Add(1)),
		parent:   p,
		cred:     cred.Fork(),
		cwd:      cwd,
		fds:      make(map[int]*FileDesc),
		nextFD:   3,
		children: make(map[int]*Proc),
		done:     make(chan struct{}),
		limits:   limits,
		session:  session,
	}
	child.traceID.Store(p.traceID.Load())
	k.procsMu.Lock()
	k.procs[child.pid] = child
	k.procsMu.Unlock()

	if session != nil {
		session.addProc()
	}
	p.mu.Lock()
	p.children[child.pid] = child
	p.mu.Unlock()
	return child, nil
}

// Exec starts the binary in vn inside the (forked, configured) process.
// The MAC exec check runs with the child's credential, so a sandboxed
// session must hold the +exec privilege on the binary.
func (p *Proc) Exec(vn *vfs.Vnode, argv []string) error {
	if vn.Type() != vfs.TypeFile {
		return errno.EACCES
	}
	cred := p.Cred()
	if !vn.Accessible(cred.UID, cred.GID, vfs.ModeExec) {
		return p.denyDAC("exec", vn)
	}
	if err := p.k.MAC.VnodeCheck(cred, vn, mac.OpVnodeExec, ""); err != nil {
		return err
	}
	main, name, err := p.k.binaryFor(vn)
	if err != nil {
		return err
	}
	if s := p.Session(); s != nil && p.k.aud.Enabled() {
		p.k.aud.Emit(s.shard, audit.Event{
			Kind: audit.KindSpawn, Op: "exec", Object: name,
			Detail: fmt.Sprintf("pid %d", p.pid),
		})
	}
	latency := p.k.SpawnLatency()
	go func() {
		if latency > 0 {
			// The simulated fork/exec latency must not outlive the
			// process: a killed (cancelled) child stops sleeping and
			// never runs its binary.
			t := time.NewTimer(latency)
			select {
			case <-t.C:
			case <-p.done:
				t.Stop()
				return
			}
		}
		code := main(p, append([]string{name}, argv...))
		p.exit(code)
	}()
	return nil
}

// Abandon terminates a forked-but-never-exec'd process so its session
// accounting unwinds. Exec failures route here.
func (p *Proc) Abandon() { p.exit(127) }

// --- session log ---

// LogKind classifies session log entries.
type LogKind int

// Log entry kinds.
const (
	LogGrant LogKind = iota
	LogDeny
	LogAutoGrant
	LogPropagate
)

func (k LogKind) String() string {
	switch k {
	case LogGrant:
		return "grant"
	case LogDeny:
		return "deny"
	case LogAutoGrant:
		return "autogrant"
	case LogPropagate:
		return "propagate"
	}
	return "unknown"
}

// LogEntry is one session log record: a capability grant, a privilege
// propagation, a denial, or a debug auto-grant (§3.2.2 "Debugging").
type LogEntry struct {
	Kind   LogKind
	Op     string
	Object string
	Rights priv.Set
}

// String renders the entry as the debugging tool prints it.
func (e LogEntry) String() string {
	if e.Rights != 0 {
		return fmt.Sprintf("%-9s %-12s %s %s", e.Kind, e.Op, e.Object, e.Rights)
	}
	return fmt.Sprintf("%-9s %-12s %s", e.Kind, e.Op, e.Object)
}

// maxLogEntries bounds per-session log memory.
const maxLogEntries = 65536

// SessionLog accumulates log entries for one session.
type SessionLog struct {
	mu      sync.Mutex
	entries []LogEntry
	dropped int
}

func (l *SessionLog) add(e LogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= maxLogEntries {
		l.dropped++
		return
	}
	l.entries = append(l.entries, e)
}

// Entries returns a copy of the recorded entries.
func (l *SessionLog) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Denials returns only the denial entries.
func (l *SessionLog) Denials() []LogEntry {
	var out []LogEntry
	for _, e := range l.Entries() {
		if e.Kind == LogDeny {
			out = append(out, e)
		}
	}
	return out
}

// AutoGrants returns only the debug auto-grant entries — the starting
// point for "identifying necessary capabilities to provide to a SHILL
// script" (§3.2.2).
func (l *SessionLog) AutoGrants() []LogEntry {
	var out []LogEntry
	for _, e := range l.Entries() {
		if e.Kind == LogAutoGrant {
			out = append(out, e)
		}
	}
	return out
}
