package kernel

import (
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/netstack"
	"repro/internal/priv"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// policyName is the label slot key for the SHILL policy module.
const policyName = "shill"

// privMap is the per-object privilege map the SHILL policy attaches to
// kernel objects via MAC labels: "a map from sessions to sets of
// privileges" (§3.2.2). Entries are keyed by session identity.
type privMap struct {
	mu sync.RWMutex
	m  map[*Session]*priv.Grant
}

// pmOf returns the object's privilege map, creating it on first use.
// The read path is tried first so that concurrent sessions touching an
// already-labelled object (shared binaries, library directories) never
// take the label's exclusive lock.
func pmOf(l *mac.Label) *privMap {
	if v := l.Get(policyName); v != nil {
		return v.(*privMap)
	}
	return l.GetOrInit(policyName, func() any {
		return &privMap{m: make(map[*Session]*priv.Grant)}
	}).(*privMap)
}

// pmPeek returns the object's privilege map only if one exists. The hot
// check path uses this to avoid allocating maps on unlabelled objects.
func pmPeek(l *mac.Label) *privMap {
	v := l.Get(policyName)
	if v == nil {
		return nil
	}
	return v.(*privMap)
}

func (pm *privMap) get(s *Session) *priv.Grant {
	if pm == nil {
		return nil
	}
	pm.mu.RLock()
	defer pm.mu.RUnlock()
	return pm.m[s]
}

// install sets or merges an entry for s, applying the
// privilege-amplification rule (§3.2.2): plain rights are unioned, but a
// deriving right whose modifier conflicts with the existing entry's is
// not merged — the existing modifier stands. When amplify is true (the
// ablation configuration) conflicting modifiers are unioned instead.
func (pm *privMap) install(s *Session, g *priv.Grant, amplify bool) (created bool) {
	if g == nil {
		return false
	}
	// Fast path: repeated propagation installs the same derived grant on
	// every lookup of the same child. Under the no-amplify rule a merge
	// where the existing entry already holds every incoming right is a
	// no-op (plain rights union to themselves; for deriving rights the
	// existing modifier always stands), so the write lock — and the
	// Clone it guards — can be skipped entirely.
	if !amplify {
		pm.mu.RLock()
		existing, ok := pm.m[s]
		pm.mu.RUnlock()
		if ok && existing.HasAll(g.Rights) {
			return false
		}
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	existing, ok := pm.m[s]
	if !ok {
		pm.m[s] = g.Clone()
		return true
	}
	if amplify {
		pm.m[s] = mergeAmplify(existing, g)
	} else {
		pm.m[s] = mergeNoAmplify(existing, g)
	}
	return false
}

// mergeAmplify is the unsafe union used only by the ablation benchmark:
// rights and modifiers both union, reintroducing the privilege
// amplification the paper's rule prevents.
func mergeAmplify(a, b *priv.Grant) *priv.Grant {
	out := a.Clone()
	out.Rights = out.Rights.Union(b.Rights)
	for r, sub := range b.Derived {
		if out.Derived == nil {
			out.Derived = make(map[priv.Right]*priv.Grant)
		}
		if existing, ok := out.Derived[r]; ok {
			merged := existing.Clone()
			merged.Rights = merged.Rights.Union(sub.Rights)
			out.Derived[r] = merged
		} else {
			out.Derived[r] = sub.Clone()
		}
	}
	return out
}

func (pm *privMap) remove(s *Session) {
	pm.mu.Lock()
	defer pm.mu.Unlock()
	delete(pm.m, s)
}

// mergeNoAmplify merges incoming grant b into existing grant a. Plain
// rights union; for deriving rights, if a already holds the right with a
// different modifier than b, a's modifier is kept ("we have found that
// this conservative approach to prevent privilege amplification works
// well in practice", §3.2.2).
func mergeNoAmplify(a, b *priv.Grant) *priv.Grant {
	out := a.Clone()
	for _, r := range b.Rights.Rights() {
		if !r.Deriving() {
			out.Rights = out.Rights.Add(r)
			continue
		}
		bSub := b.DerivedGrant(r)
		if !a.Has(r) {
			// Adopt b's deriving right and its modifier.
			out.Rights = out.Rights.Add(r)
			if bs, ok := b.Derived[r]; ok {
				if out.Derived == nil {
					out.Derived = make(map[priv.Right]*priv.Grant)
				}
				out.Derived[r] = bs.Clone()
			}
			continue
		}
		aSub := a.DerivedGrant(r)
		if aSub == a && bSub == b {
			continue // both inherit: compatible
		}
		// Conflicting modifiers: keep a's (no merge).
		_ = bSub
	}
	return out
}

// requiredVnodeRights maps each mediated vnode operation to the
// privilege set a session must hold. OpVnodeWrite demands both +write
// and +append because the framework cannot distinguish them (§3.2.3).
var requiredVnodeRights = map[mac.VnodeOp]priv.Set{
	mac.OpVnodeLookup:        priv.NewSet(priv.RLookup),
	mac.OpVnodeRead:          priv.NewSet(priv.RRead),
	mac.OpVnodeWrite:         priv.NewSet(priv.RWrite, priv.RAppend),
	mac.OpVnodeStat:          priv.NewSet(priv.RStat),
	mac.OpVnodeExec:          priv.NewSet(priv.RExec),
	mac.OpVnodeReaddir:       priv.NewSet(priv.RContents),
	mac.OpVnodeCreateFile:    priv.NewSet(priv.RCreateFile),
	mac.OpVnodeCreateDir:     priv.NewSet(priv.RCreateDir),
	mac.OpVnodeCreateSymlink: priv.NewSet(priv.RCreateSymlink),
	mac.OpVnodeReadSymlink:   priv.NewSet(priv.RReadSymlink),
	mac.OpVnodeUnlinkFile:    priv.NewSet(priv.RUnlinkFile),
	mac.OpVnodeUnlinkDir:     priv.NewSet(priv.RUnlinkDir),
	mac.OpVnodeUnlinked:      priv.NewSet(priv.RUnlink),
	mac.OpVnodeLink:          priv.NewSet(priv.RLink),
	mac.OpVnodeAddLink:       priv.NewSet(priv.RAddLink),
	mac.OpVnodeRename:        priv.NewSet(priv.RRename),
	mac.OpVnodeChmod:         priv.NewSet(priv.RChmod),
	mac.OpVnodeChown:         priv.NewSet(priv.RChown),
	mac.OpVnodeChflags:       priv.NewSet(priv.RChflags),
	mac.OpVnodeUtimes:        priv.NewSet(priv.RUtimes),
	mac.OpVnodeTruncate:      priv.NewSet(priv.RTruncate),
	mac.OpVnodeChdir:         priv.NewSet(priv.RChdir),
	mac.OpVnodePathLookup:    priv.NewSet(priv.RPath),
}

var requiredSockRights = map[mac.SocketOp]priv.Right{
	mac.OpSockCreate:  priv.RSockCreate,
	mac.OpSockBind:    priv.RSockBind,
	mac.OpSockConnect: priv.RSockConnect,
	mac.OpSockListen:  priv.RSockListen,
	mac.OpSockAccept:  priv.RSockAccept,
	mac.OpSockSend:    priv.RSockSend,
	mac.OpSockRecv:    priv.RSockRecv,
}

// PolicyStats counts policy activity; benchmarks and tests read it.
type PolicyStats struct {
	Checks       uint64
	Denials      uint64
	AutoGrants   uint64
	Propagations uint64
	Grants       uint64
}

// ShillPolicy is the SHILL MAC policy module (§3.2). It restricts only
// processes whose credential carries an entered session; for everything
// else every check is a constant-time pass — which is why the paper's
// "SHILL installed" configuration shows negligible overhead.
type ShillPolicy struct {
	k      *Kernel
	logAll atomic.Bool

	// Ablation knobs (benchmarks only): disable privilege propagation on
	// lookup/create, or allow conflicting modifiers to merge (turning
	// off the §3.2.2 privilege-amplification defence).
	noPropagation atomic.Bool
	allowAmplify  atomic.Bool

	checks       atomic.Uint64
	denials      atomic.Uint64
	autoGrants   atomic.Uint64
	propagations atomic.Uint64
	grants       atomic.Uint64
}

// SetPropagation toggles the post-lookup/post-create privilege
// propagation (ablation benchmarks).
func (pol *ShillPolicy) SetPropagation(on bool) { pol.noPropagation.Store(!on) }

// SetAmplificationDefence toggles the no-merge rule for conflicting
// derivation modifiers (ablation benchmarks; true = paper behaviour).
func (pol *ShillPolicy) SetAmplificationDefence(on bool) { pol.allowAmplify.Store(!on) }

func newShillPolicy(k *Kernel) *ShillPolicy { return &ShillPolicy{k: k} }

// Name returns the policy's registration name.
func (pol *ShillPolicy) Name() string { return policyName }

// SetLogAll enables logging for all future sessions (the privileged
// log-viewing facility of §3.2.2).
func (pol *ShillPolicy) SetLogAll(on bool) { pol.logAll.Store(on) }

// Stats returns a snapshot of policy counters.
func (pol *ShillPolicy) Stats() PolicyStats {
	return PolicyStats{
		Checks:       pol.checks.Load(),
		Denials:      pol.denials.Load(),
		AutoGrants:   pol.autoGrants.Load(),
		Propagations: pol.propagations.Load(),
		Grants:       pol.grants.Load(),
	}
}

// ResetStats zeroes the counters (benchmarks).
func (pol *ShillPolicy) ResetStats() {
	pol.checks.Store(0)
	pol.denials.Store(0)
	pol.autoGrants.Store(0)
	pol.propagations.Store(0)
	pol.grants.Store(0)
}

// sessionOf extracts the SHILL session from a subject credential.
func sessionOf(cred *mac.Cred) *Session {
	v := cred.MACLabel().Get(policyName)
	if v == nil {
		return nil
	}
	return v.(*Session)
}

// enteredSession returns the subject's session if it is enforcing.
func enteredSession(cred *mac.Cred) *Session {
	s := sessionOf(cred)
	if s == nil || !s.entered.Load() {
		return nil
	}
	return s
}

// grantObject installs a grant for the session on an object's privilege
// map, recording it for teardown, logging, and the audit trail. The
// audit event fires only when the install creates the session's entry
// on the object: the grant phase re-grants shared ancestors (bare
// lookup on /, /usr, …) once per capability, and those no-op merges
// would otherwise dominate the trail — and pay a reverse path lookup
// each — without adding information.
func (pol *ShillPolicy) grantObject(s *Session, obj mac.Labeled, g *priv.Grant) {
	pm := pmOf(obj.MACLabel())
	created := pm.install(s, g, pol.allowAmplify.Load())
	if created {
		s.recordLabeled(pm)
	}
	pol.grants.Add(1)
	if s.log != nil || created {
		objFn := audit.DeferObject(func() string { return pol.objName(obj) }) // one memoized lookup serves both records
		if s.log != nil {
			s.log.add(LogEntry{Kind: LogGrant, Op: "grant", Object: objFn.Value(), Rights: g.Rights})
		}
		if created {
			pol.k.aud.Emit(s.shard, audit.Event{
				Kind: audit.KindGrant, Layer: audit.LayerPolicy, Policy: policyName,
				Op: "grant", ObjectFn: objFn, Rights: g.Rights,
			})
		}
	}
}

// objName renders an object for log entries.
func (pol *ShillPolicy) objName(obj mac.Labeled) string {
	switch o := obj.(type) {
	case *vfs.Vnode:
		if path, ok := pol.k.FS.PathOf(o); ok {
			return path
		}
		return "vnode"
	case *vfs.Pipe:
		return "pipe"
	case *netstack.Socket:
		return "socket(" + o.Domain().String() + ")"
	}
	return "object"
}

// deny records and returns a structured denial, or auto-grants in debug
// mode. held is the grant the session actually holds on the object (nil
// when it holds none); the returned *audit.DenyReason names exactly the
// privileges that were missing, and the denial is retained in the audit
// log's per-shard denial ring so it survives allow-event churn.
func (pol *ShillPolicy) deny(s *Session, obj mac.Labeled, op string, need priv.Set, held *priv.Grant) error {
	if s.debug {
		pol.autoGrants.Add(1)
		pm := pmOf(obj.MACLabel())
		if pm.install(s, priv.GrantOf(need), pol.allowAmplify.Load()) {
			s.recordLabeled(pm)
		}
		objFn := audit.DeferObject(func() string { return pol.objName(obj) })
		if s.log != nil {
			s.log.add(LogEntry{Kind: LogAutoGrant, Op: op, Object: objFn.Value(), Rights: need})
		}
		pol.k.aud.Emit(s.shard, audit.Event{
			Kind: audit.KindAutoGrant, Layer: audit.LayerPolicy, Policy: policyName,
			Op: op, ObjectFn: objFn, Rights: need,
		})
		return nil
	}
	pol.denials.Add(1)
	// The denial's object description (a reverse path walk for vnodes)
	// is deferred: the hot path captures a closure over the object, and
	// the walk happens only if something formats or serializes the
	// reason or queries the event. The LazyObject is shared between the
	// reason and the event, so at most one walk ever runs.
	objFn := audit.DeferObject(func() string { return pol.objName(obj) })
	if s.log != nil {
		// The in-kernel debug log stores plain strings; resolve now
		// (the memo makes the later views free).
		s.log.add(LogEntry{Kind: LogDeny, Op: op, Object: objFn.Value(), Rights: need})
	}
	missing := need
	if held != nil {
		missing = need.Minus(held.Rights)
	}
	reason := &audit.DenyReason{
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op, ObjectFn: objFn, Session: s.id,
		Missing: missing, TraceID: s.trace.Load(), Errno: errno.EACCES,
	}
	reason.Seq = pol.k.aud.Emit(s.shard, audit.Event{
		Kind: audit.KindSyscall, Verdict: audit.Deny,
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op, ObjectFn: objFn, Rights: missing,
		Trace: reason.TraceID,
	})
	return reason
}

// allow records a permitted check. The object is identified by the
// operation's name component only — reverse-resolving a full path on
// every allowed syscall would dwarf the cost of the check itself.
func (pol *ShillPolicy) allow(s *Session, op, name string) {
	pol.k.aud.Emit(s.shard, audit.Event{
		Kind: audit.KindSyscall, Verdict: audit.Allow,
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op, Object: name,
	})
}

// VnodeCheck verifies the session holds the privileges the operation
// requires on the vnode.
func (pol *ShillPolicy) VnodeCheck(cred *mac.Cred, vn mac.Labeled, op mac.VnodeOp, name string) error {
	s := enteredSession(cred)
	if s == nil {
		return nil
	}
	pol.checks.Add(1)
	defer pol.k.Ops.End(trace.OpPolicy, pol.k.Ops.Begin(trace.OpPolicy))
	need, ok := requiredVnodeRights[op]
	if !ok {
		return pol.deny(s, vn, op.String(), 0, nil)
	}
	g := pmPeek(vn.MACLabel()).get(s)
	if g.HasAll(need) {
		pol.allow(s, op.String(), name)
		return nil
	}
	return pol.deny(s, vn, op.String(), need, g)
}

// VnodePostLookup propagates privileges from a directory to a child
// after a successful lookup — the mac_vnode_post_lookup hook the paper
// added to the framework. Privileges never propagate through ".." (the
// fine-grained confinement rule) or "." (privilege amplification,
// footnote 5).
func (pol *ShillPolicy) VnodePostLookup(cred *mac.Cred, dir, child mac.Labeled, name string) {
	s := enteredSession(cred)
	if s == nil || pol.noPropagation.Load() {
		return
	}
	if name == ".." || name == "." {
		return
	}
	dg := pmPeek(dir.MACLabel()).get(s)
	if dg == nil || !dg.Has(priv.RLookup) {
		return
	}
	derived := dg.DerivedGrant(priv.RLookup)
	if derived == nil || derived.Rights.Empty() {
		return
	}
	pol.propagate(s, child, "lookup", name, derived)
}

// propagate installs a derived grant on child and records it. The audit
// event fires only when the install creates the entry: re-walking the
// same path re-installs the same derived grant, which would flood the
// ring with duplicates.
func (pol *ShillPolicy) propagate(s *Session, child mac.Labeled, op, name string, derived *priv.Grant) {
	pm := pmOf(child.MACLabel())
	created := pm.install(s, derived, pol.allowAmplify.Load())
	if created {
		s.recordLabeled(pm)
	}
	pol.propagations.Add(1)
	if s.log != nil {
		s.log.add(LogEntry{Kind: LogPropagate, Op: op, Object: name, Rights: derived.Rights})
	}
	if created {
		pol.k.aud.Emit(s.shard, audit.Event{
			Kind: audit.KindPropagate, Layer: audit.LayerPolicy, Policy: policyName,
			Op: op, Object: name, Rights: derived.Rights,
		})
	}
}

// VnodePostCreate labels a newly created object with the creating
// session's derived privileges — the mac_vnode_post_create hook.
func (pol *ShillPolicy) VnodePostCreate(cred *mac.Cred, dir, child mac.Labeled, name string, op mac.VnodeOp) {
	s := enteredSession(cred)
	if s == nil || pol.noPropagation.Load() {
		return
	}
	var r priv.Right
	switch op {
	case mac.OpVnodeCreateFile:
		r = priv.RCreateFile
	case mac.OpVnodeCreateDir:
		r = priv.RCreateDir
	case mac.OpVnodeCreateSymlink:
		r = priv.RCreateSymlink
	default:
		return
	}
	dg := pmPeek(dir.MACLabel()).get(s)
	if dg == nil || !dg.Has(r) {
		return
	}
	derived := dg.DerivedGrant(r)
	if derived == nil || derived.Rights.Empty() {
		return
	}
	pol.propagate(s, child, "create", name, derived)
}

// PipeCheck verifies pipe privileges.
func (pol *ShillPolicy) PipeCheck(cred *mac.Cred, p mac.Labeled, op mac.PipeOp) error {
	s := enteredSession(cred)
	if s == nil {
		return nil
	}
	pol.checks.Add(1)
	defer pol.k.Ops.End(trace.OpPolicy, pol.k.Ops.Begin(trace.OpPolicy))
	var need priv.Set
	switch op {
	case mac.OpPipeRead:
		need = priv.NewSet(priv.RRead)
	case mac.OpPipeWrite:
		need = priv.NewSet(priv.RWrite)
	case mac.OpPipeStat:
		need = priv.NewSet(priv.RStat)
	}
	g := pmPeek(p.MACLabel()).get(s)
	if g.HasAll(need) {
		pol.allow(s, op.String(), "")
		return nil
	}
	return pol.deny(s, p, op.String(), need, g)
}

// SocketCheck verifies socket privileges. Creation consults the
// session's socket-factory grant for the socket's domain; the new socket
// is then labelled with that grant so subsequent operations check
// against it.
func (pol *ShillPolicy) SocketCheck(cred *mac.Cred, so mac.Labeled, op mac.SocketOp) error {
	s := enteredSession(cred)
	if s == nil {
		return nil
	}
	pol.checks.Add(1)
	defer pol.k.Ops.End(trace.OpPolicy, pol.k.Ops.Begin(trace.OpPolicy))
	r := requiredSockRights[op]
	if op == mac.OpSockCreate {
		sock, ok := so.(*netstack.Socket)
		if !ok {
			return pol.deny(s, so, op.String(), priv.NewSet(r), nil)
		}
		s.mu.Lock()
		factory := s.sockGrants[sock.Domain()]
		s.mu.Unlock()
		if !factory.Has(priv.RSockCreate) {
			return pol.deny(s, so, op.String(), priv.NewSet(r), factory)
		}
		pm := pmOf(so.MACLabel())
		if pm.install(s, factory, pol.allowAmplify.Load()) {
			s.recordLabeled(pm)
		}
		pol.allow(s, op.String(), sock.Domain().String())
		return nil
	}
	g := pmPeek(so.MACLabel()).get(s)
	if g.Has(r) {
		pol.allow(s, op.String(), "")
		return nil
	}
	return pol.deny(s, so, op.String(), priv.NewSet(r), g)
}

// SocketPostAccept labels an accepted connection with the listener's
// privileges for the accepting session.
func (pol *ShillPolicy) SocketPostAccept(cred *mac.Cred, listener, conn mac.Labeled) {
	s := enteredSession(cred)
	if s == nil {
		return
	}
	g := pmPeek(listener.MACLabel()).get(s)
	if g == nil {
		return
	}
	pm := pmOf(conn.MACLabel())
	if pm.install(s, g, pol.allowAmplify.Load()) {
		s.recordLabeled(pm)
	}
}

// ProcCheck enforces the process-interaction policy (§3.2.2): sandboxed
// processes may signal, wait for, or debug only processes in the same
// session or a descendant session.
func (pol *ShillPolicy) ProcCheck(cred, target *mac.Cred, op mac.ProcOp) error {
	s := enteredSession(cred)
	if s == nil {
		return nil
	}
	pol.checks.Add(1)
	defer pol.k.Ops.End(trace.OpPolicy, pol.k.Ops.Begin(trace.OpPolicy))
	t := sessionOf(target)
	if t != nil && t.isDescendantOf(s) {
		pol.allow(s, op.String(), "process")
		return nil
	}
	pol.denials.Add(1)
	if s.log != nil {
		s.log.add(LogEntry{Kind: LogDeny, Op: op.String(), Object: "process"})
	}
	reason := &audit.DenyReason{
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op.String(), Object: "process", Session: s.id,
		TraceID: s.trace.Load(), Errno: errno.EPERM,
	}
	reason.Seq = pol.k.aud.Emit(s.shard, audit.Event{
		Kind: audit.KindSyscall, Verdict: audit.Deny,
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op.String(), Object: "process",
		Detail: "target process is outside the session hierarchy (§3.2.2 process interaction)",
		Trace:  reason.TraceID,
	})
	return reason
}

// SystemCheck enforces the Figure 7 policy rows: sysctl is read-only in
// a sandbox; the kernel environment, kernel modules, and both IPC
// families are denied.
func (pol *ShillPolicy) SystemCheck(cred *mac.Cred, op mac.SystemOp, name string) error {
	s := enteredSession(cred)
	if s == nil {
		return nil
	}
	pol.checks.Add(1)
	defer pol.k.Ops.End(trace.OpPolicy, pol.k.Ops.Begin(trace.OpPolicy))
	if op == mac.OpSysctlRead {
		pol.allow(s, op.String(), name)
		return nil
	}
	pol.denials.Add(1)
	if s.log != nil {
		s.log.add(LogEntry{Kind: LogDeny, Op: op.String(), Object: name})
	}
	reason := &audit.DenyReason{
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op.String(), Object: name, Session: s.id,
		TraceID: s.trace.Load(), Errno: errno.EPERM,
	}
	reason.Seq = pol.k.aud.Emit(s.shard, audit.Event{
		Kind: audit.KindSyscall, Verdict: audit.Deny,
		Layer: audit.LayerPolicy, Policy: policyName,
		Op: op.String(), Object: name,
		Detail: "denied for all sandboxes (Figure 7 policy rows)",
		Trace:  reason.TraceID,
	})
	return reason
}

// GrantToSession is the kernel-internal grant used by the runtime when
// it launches a sandbox on behalf of a proc with no session of its own:
// the language runtime enforces contracts, so the grant is taken at
// face value. It is also the hook for the shill-sandbox debugging tool.
func (pol *ShillPolicy) GrantToSession(s *Session, obj mac.Labeled, g *priv.Grant) {
	pol.grantObject(s, obj, g)
}

// SessionGrantOn reports the grant a session holds on an object (tests
// and diagnostics).
func (pol *ShillPolicy) SessionGrantOn(s *Session, obj mac.Labeled) *priv.Grant {
	return pmPeek(obj.MACLabel()).get(s)
}
