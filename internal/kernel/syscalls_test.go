package kernel

import (
	"errors"
	"testing"

	"repro/internal/errno"
	"repro/internal/priv"
	"repro/internal/vfs"
)

func TestSeekAndPwrite(t *testing.T) {
	_, p := testWorld(t, false)
	fd, err := p.OpenAt(AtCWD, "f.bin", ORead|OWrite|OCreate, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("0123456789"))
	if off, err := p.Seek(fd, 2, 0); err != nil || off != 2 {
		t.Fatalf("SEEK_SET = %d, %v", off, err)
	}
	buf := make([]byte, 3)
	p.Read(fd, buf)
	if string(buf) != "234" {
		t.Fatalf("read after seek = %q", buf)
	}
	if off, _ := p.Seek(fd, -1, 2); off != 9 {
		t.Fatalf("SEEK_END = %d", off)
	}
	if _, err := p.Seek(fd, -100, 1); !errors.Is(err, errno.EINVAL) {
		t.Fatal("negative seek accepted")
	}
	// Pwrite does not move the offset.
	if _, err := p.Pwrite(fd, []byte("XX"), 0); err != nil {
		t.Fatal(err)
	}
	if off, _ := p.Seek(fd, 0, 1); off != 9 {
		t.Fatalf("offset moved by pwrite: %d", off)
	}
	got := make([]byte, 2)
	p.Pread(fd, got, 0)
	if string(got) != "XX" {
		t.Fatalf("pwrite contents = %q", got)
	}
}

func TestDupSharesOffset(t *testing.T) {
	_, p := testWorld(t, false)
	fd, _ := p.OpenAt(AtCWD, "/etc/passwd", ORead, 0)
	dup, err := p.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	p.Read(fd, buf)
	// The duplicate shares the file offset, as POSIX dup does.
	n, _ := p.Read(dup, buf)
	if n == 0 || buf[0] == 'r' {
		t.Fatalf("dup did not share offset: %q", buf[:n])
	}
	p.Close(fd)
	// Closing one descriptor leaves the other usable.
	if _, err := p.Read(dup, buf); err != nil {
		t.Fatalf("read after closing sibling: %v", err)
	}
}

func TestReadDirRequiresContentsInSandbox(t *testing.T) {
	k, p := testWorld(t, true)
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/":           priv.NewGrant(priv.RLookup),
		"/home":       priv.NewGrant(priv.RLookup),
		"/home/alice": priv.NewGrant(priv.RLookup), // no +contents
	})
	fd, err := sb.OpenAt(AtCWD, "/home/alice", ORead|ODirectory, 0)
	if err != nil {
		t.Fatalf("open dir: %v", err)
	}
	if _, err := sb.ReadDir(fd); !errors.Is(err, errno.EACCES) {
		t.Fatalf("readdir without +contents = %v", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/":           priv.NewGrant(priv.RLookup),
		"/home":       priv.NewGrant(priv.RLookup),
		"/home/alice": priv.NewGrant(priv.RLookup, priv.RContents),
	})
	fd2, _ := sb2.OpenAt(AtCWD, "/home/alice", ORead|ODirectory, 0)
	names, err := sb2.ReadDir(fd2)
	if err != nil || len(names) != 1 {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	_ = k
}

func TestSymlinkCreationInSandbox(t *testing.T) {
	_, p := testWorld(t, true)
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob": priv.NewGrant(priv.RLookup),
	})
	if err := sb.SymlinkAt("target", AtCWD, "ln"); !errors.Is(err, errno.EACCES) {
		t.Fatalf("symlink without +create-symlink = %v", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob": priv.NewGrant(priv.RLookup, priv.RCreateSymlink),
	})
	if err := sb2.SymlinkAt("target", AtCWD, "ln"); err != nil {
		t.Fatalf("symlink with privilege: %v", err)
	}
}

func TestRenameRequiresPrivileges(t *testing.T) {
	k, p := testWorld(t, true)
	if _, err := k.FS.WriteFile("/home/bob/f.txt", nil, 0o644, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	// Neither unlink-file on the dir nor rename on the object: denied.
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob": priv.NewGrant(priv.RLookup, priv.RAddLink),
	})
	if err := sb.RenameAt(AtCWD, "f.txt", AtCWD, "g.txt"); !errors.Is(err, errno.EACCES) {
		t.Fatalf("rename without privileges = %v", err)
	}
	// unlink-file on the directory suffices.
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob": priv.NewGrant(priv.RLookup, priv.RAddLink, priv.RUnlinkFile),
	})
	if err := sb2.RenameAt(AtCWD, "f.txt", AtCWD, "g.txt"); err != nil {
		t.Fatalf("rename with dir privilege: %v", err)
	}
	// Alternatively, +rename on the object itself.
	if _, err := k.FS.WriteFile("/home/bob/h.txt", nil, 0o644, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	sb3 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup, priv.RAddLink),
		"/home/bob/h.txt": priv.NewGrant(priv.RRename),
	})
	if err := sb3.RenameAt(AtCWD, "h.txt", AtCWD, "i.txt"); err != nil {
		t.Fatalf("rename with object privilege: %v", err)
	}
}

func TestPathSyscallRequiresPathPrivilege(t *testing.T) {
	_, p := testWorld(t, true)
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/":                   priv.NewGrant(priv.RLookup),
		"/home":               priv.NewGrant(priv.RLookup),
		"/home/alice":         priv.NewGrant(priv.RLookup),
		"/home/alice/dog.jpg": priv.NewGrant(priv.RRead),
	})
	fd, err := sb.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Path(fd); !errors.Is(err, errno.EACCES) {
		t.Fatalf("path without +path = %v", err)
	}
}

func TestSessionLogRecordsDenials(t *testing.T) {
	_, p := testWorld(t, true)
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(SessionOptions{Logging: true}); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	child.OpenAt(AtCWD, "/etc/passwd", ORead, 0) // denied
	denials := child.Session().Log().Denials()
	if len(denials) == 0 {
		t.Fatal("denial not logged")
	}
	if denials[0].Kind.String() != "deny" {
		t.Fatalf("kind = %v", denials[0].Kind)
	}
	if denials[0].String() == "" {
		t.Fatal("empty log rendering")
	}
}

func TestTruncateChecksMAC(t *testing.T) {
	k, p := testWorld(t, true)
	if _, err := k.FS.WriteFile("/home/bob/t.txt", []byte("data"), 0o666, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup),
		"/home/bob/t.txt": priv.NewGrant(priv.RWrite, priv.RAppend),
	})
	fd, err := sb.OpenAt(AtCWD, "t.txt", OWrite, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Truncate(fd, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("truncate without +truncate = %v", err)
	}
	// O_TRUNC is checked at open too.
	if _, err := sb.OpenAt(AtCWD, "t.txt", OWrite|OTrunc, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("O_TRUNC without +truncate = %v", err)
	}
}

func TestChmodInSandbox(t *testing.T) {
	k, p := testWorld(t, true)
	if _, err := k.FS.WriteFile("/home/bob/m.txt", nil, 0o644, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup),
		"/home/bob/m.txt": priv.NewGrant(priv.RStat),
	})
	if err := sb.FChmodAt(AtCWD, "m.txt", 0o600); !errors.Is(err, errno.EACCES) {
		t.Fatalf("chmod without +chmod = %v", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup),
		"/home/bob/m.txt": priv.NewGrant(priv.RChmod),
	})
	if err := sb2.FChmodAt(AtCWD, "m.txt", 0o600); err != nil {
		t.Fatalf("chmod with privilege: %v", err)
	}
	if mode := k.FS.MustResolve("/home/bob/m.txt").Mode(); mode != 0o600 {
		t.Fatalf("mode = %o", mode)
	}
}

func TestChownAndUtimes(t *testing.T) {
	k, p := testWorld(t, true)
	root := k.NewProc(0, 0)
	if _, err := k.FS.WriteFile("/home/bob/o.txt", nil, 0o644, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	// Non-root chown: EPERM.
	if err := p.FChownAt(AtCWD, "o.txt", 0, 0); !errors.Is(err, errno.EPERM) {
		t.Fatalf("non-root chown = %v", err)
	}
	if err := root.FChownAt(AtCWD, "/home/bob/o.txt", 500, 500); err != nil {
		t.Fatal(err)
	}
	uid, gid := k.FS.MustResolve("/home/bob/o.txt").Owner()
	if uid != 500 || gid != 500 {
		t.Fatalf("owner = %d:%d", uid, gid)
	}
	// Utimes: the new owner may touch; bob no longer may.
	if err := p.UtimesAt(AtCWD, "o.txt"); !errors.Is(err, errno.EPERM) {
		t.Fatalf("non-owner utimes = %v", err)
	}
	if err := root.UtimesAt(AtCWD, "/home/bob/o.txt"); err != nil {
		t.Fatal(err)
	}

	// In a sandbox, chown/utimes demand their privileges.
	if _, err := k.FS.WriteFile("/home/bob/s.txt", nil, 0o666, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup),
		"/home/bob/s.txt": priv.NewGrant(priv.RStat),
	})
	if err := sb.UtimesAt(AtCWD, "s.txt"); !errors.Is(err, errno.EACCES) {
		t.Fatalf("sandbox utimes without +utimes = %v", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":       priv.NewGrant(priv.RLookup),
		"/home/bob/s.txt": priv.NewGrant(priv.RUtimes),
	})
	if err := sb2.UtimesAt(AtCWD, "s.txt"); err != nil {
		t.Fatalf("sandbox utimes with privilege: %v", err)
	}
}

func TestKernelPipeSyscalls(t *testing.T) {
	_, p := testWorld(t, false)
	r, w, err := p.MakePipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		p.Write(w, []byte("through the pipe"))
		p.Close(w)
	}()
	buf := make([]byte, 32)
	n, err := p.Read(r, buf)
	if err != nil || string(buf[:n]) != "through the pipe" {
		t.Fatalf("pipe read = %q, %v", buf[:n], err)
	}
	if n, _ := p.Read(r, buf); n != 0 {
		t.Fatal("no EOF after writer close")
	}
	// Wrong-direction operations EBADF.
	if _, err := p.Read(w, buf); !errors.Is(err, errno.EBADF) {
		t.Fatal("read from write end")
	}
	if _, err := p.Write(r, []byte("x")); !errors.Is(err, errno.EBADF) {
		t.Fatal("write to read end")
	}
}

func TestStatThroughSyscalls(t *testing.T) {
	_, p := testWorld(t, false)
	st, err := p.FStatAt(AtCWD, "/home/alice/dog.jpg", true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != vfs.TypeFile || st.Size != 8 || st.UID != 1001 {
		t.Fatalf("stat = %+v", st)
	}
	fd, _ := p.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	st2, err := p.FStat(fd)
	if err != nil || st2.Ino != st.Ino {
		t.Fatalf("fstat = %+v, %v", st2, err)
	}
}

func TestSysctlWriteRequiresRoot(t *testing.T) {
	k, p := testWorld(t, false)
	if err := p.SysctlSet("kern.ostype", "x"); !errors.Is(err, errno.EPERM) {
		t.Fatalf("non-root sysctl write = %v", err)
	}
	root := k.NewProc(0, 0)
	if err := root.SysctlSet("kern.custom", "1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := root.SysctlGet("kern.custom"); v != "1" {
		t.Fatal("sysctl write lost")
	}
	if err := root.KenvSet("newvar", "v"); err != nil {
		t.Fatal(err)
	}
	if err := root.KldLoad("extra.ko"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range root.KldList() {
		if m == "extra.ko" {
			found = true
		}
	}
	if !found {
		t.Fatal("module not loaded")
	}
	if err := root.KldUnload("extra.ko"); err != nil {
		t.Fatal(err)
	}
	if err := root.KldUnload("extra.ko"); !errors.Is(err, errno.ENOENT) {
		t.Fatal("double unload succeeded")
	}
}

func TestProcsSnapshotAndKill(t *testing.T) {
	k, p := testWorld(t, false)
	k.RegisterBinary("sleepy", func(p *Proc, argv []string) int {
		<-p.Done()
		return 0
	})
	vn, _ := k.FS.WriteFile("/bin/sleepy", []byte("#!bin:sleepy\n"), 0o755, 0, 0)
	child, err := p.Spawn(vn, nil, SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	pids := k.Procs()
	found := false
	for _, pid := range pids {
		if pid == child.PID() {
			found = true
		}
	}
	if !found {
		t.Fatal("child missing from process table")
	}
	if err := p.Kill(child.PID()); err != nil {
		t.Fatal(err)
	}
	code, err := p.Wait(child.PID())
	if err != nil || code != 137 {
		t.Fatalf("killed child = %d, %v", code, err)
	}
	if err := p.Kill(99999); !errors.Is(err, errno.ESRCH) {
		t.Fatal("kill of missing pid")
	}
	if _, err := p.Wait(99999); !errors.Is(err, errno.ECHILD) {
		t.Fatal("wait for non-child")
	}
}

func TestMergeNoAmplifyUnionsPlainRights(t *testing.T) {
	a := priv.NewGrant(priv.RRead)
	b := priv.NewGrant(priv.RStat)
	out := mergeNoAmplify(a, b)
	if !out.Has(priv.RRead) || !out.Has(priv.RStat) {
		t.Fatalf("plain rights not unioned: %v", out)
	}
	// Adopting a new deriving right keeps its modifier.
	c := priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, priv.NewGrant(priv.RPath))
	out = mergeNoAmplify(a, c)
	if got := out.DerivedGrant(priv.RLookup); !got.Equal(priv.NewGrant(priv.RPath)) {
		t.Fatalf("adopted modifier = %v", got)
	}
}

func TestPolicyStats(t *testing.T) {
	k, p := testWorld(t, true)
	k.Policy.ResetStats()
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/":           priv.NewGrant(priv.RLookup),
		"/home":       priv.NewGrant(priv.RLookup),
		"/home/alice": priv.GrantOf(priv.ReadOnlyDir),
	})
	fd, err := sb.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb.Read(fd, make([]byte, 4))
	sb.OpenAt(AtCWD, "/etc/passwd", ORead, 0) // denied
	st := k.Policy.Stats()
	if st.Checks == 0 || st.Denials == 0 || st.Propagations == 0 || st.Grants == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
