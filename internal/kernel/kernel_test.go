package kernel

import (
	"errors"
	"testing"

	"repro/internal/errno"
	"repro/internal/mac"
	"repro/internal/priv"
	"repro/internal/vfs"
)

// testWorld builds a kernel with a small filesystem image:
//
//	/home/alice/dog.jpg  (0644, alice=uid 1001)
//	/home/bob            (cwd for tests, uid 1002)
//	/etc/passwd
//	/tmp                 (1777)
func testWorld(t *testing.T, install bool) (*Kernel, *Proc) {
	t.Helper()
	k := New()
	if install {
		k.InstallShillModule()
	}
	t.Cleanup(k.Shutdown)
	mk := func(path string, mode uint16, uid int) {
		if _, err := k.FS.MkdirAll(path, mode, uid, uid); err != nil {
			t.Fatal(err)
		}
	}
	mk("/home/alice", 0o755, 1001)
	mk("/home/bob", 0o755, 1002)
	mk("/tmp", 0o777, 0)
	if _, err := k.FS.WriteFile("/home/alice/dog.jpg", []byte("JFIFdata"), 0o644, 1001, 1001); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.WriteFile("/etc/passwd", []byte("root:0\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(1002, 1002)
	if err := p.Chdir("/home/bob"); err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestOpenReadClose(t *testing.T) {
	_, p := testWorld(t, false)
	fd, err := p.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	buf := make([]byte, 4)
	n, err := p.Read(fd, buf)
	if err != nil || string(buf[:n]) != "JFIF" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); !errors.Is(err, errno.EBADF) {
		t.Fatal("double close should EBADF")
	}
}

func TestOpenCreateWriteRead(t *testing.T) {
	_, p := testWorld(t, false)
	fd, err := p.OpenAt(AtCWD, "notes.txt", ORead|OWrite|OCreate, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := p.Write(fd, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Seek(fd, 0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, _ := p.Read(fd, buf)
	if string(buf[:n]) != "data" {
		t.Fatalf("read back %q", buf[:n])
	}
}

func TestDACDeniesOtherUsersWrite(t *testing.T) {
	_, p := testWorld(t, false)
	// bob (uid 1002) cannot write alice's file.
	if _, err := p.OpenAt(AtCWD, "/home/alice/dog.jpg", OWrite, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("open for write = %v, want EACCES", err)
	}
	// but can read it (0644).
	if _, err := p.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0); err != nil {
		t.Fatalf("open for read: %v", err)
	}
}

func TestRelativeAndDotDotResolution(t *testing.T) {
	_, p := testWorld(t, false)
	fd, err := p.OpenAt(AtCWD, "../alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatalf("relative open: %v", err)
	}
	p.Close(fd)
}

func TestSymlinkFollowAndNoFollow(t *testing.T) {
	k, p := testWorld(t, false)
	if err := p.SymlinkAt("/home/alice/dog.jpg", AtCWD, "link"); err != nil {
		t.Fatal(err)
	}
	fd, err := p.OpenAt(AtCWD, "link", ORead, 0)
	if err != nil {
		t.Fatalf("open through symlink: %v", err)
	}
	p.Close(fd)
	if _, err := p.OpenAt(AtCWD, "link", ORead|ONoFollow, 0); !errors.Is(err, errno.ELOOP) {
		t.Fatalf("O_NOFOLLOW = %v, want ELOOP", err)
	}
	// Symlink loop detection.
	if err := p.SymlinkAt("loopb", AtCWD, "loopa"); err != nil {
		t.Fatal(err)
	}
	if err := p.SymlinkAt("loopa", AtCWD, "loopb"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenAt(AtCWD, "loopa", ORead, 0); !errors.Is(err, errno.ELOOP) {
		t.Fatalf("symlink loop = %v, want ELOOP", err)
	}
	_ = k
}

func TestPathSyscall(t *testing.T) {
	_, p := testWorld(t, false)
	fd, _ := p.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	path, err := p.Path(fd)
	if err != nil || path != "/home/alice/dog.jpg" {
		t.Fatalf("Path = %q, %v", path, err)
	}
}

func TestFMkdirAtReturnsUsableFD(t *testing.T) {
	_, p := testWorld(t, false)
	dfd, err := p.FMkdirAt(AtCWD, "work", 0o755)
	if err != nil {
		t.Fatalf("FMkdirAt: %v", err)
	}
	if _, err := p.OpenAt(dfd, "inner.txt", OCreate|OWrite, 0o644); err != nil {
		t.Fatalf("create inside new dir: %v", err)
	}
}

func TestFLinkAtAndFUnlinkAt(t *testing.T) {
	_, p := testWorld(t, false)
	ffd, err := p.OpenAt(AtCWD, "orig", OCreate|OWrite, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(ffd, []byte("x"))
	dfd, err := p.OpenAt(AtCWD, ".", ORead|ODirectory, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FLinkAt(ffd, dfd, "alias"); err != nil {
		t.Fatalf("FLinkAt: %v", err)
	}
	st, err := p.FStatAt(AtCWD, "alias", true)
	if err != nil || st.Size != 1 {
		t.Fatalf("stat alias: %+v, %v", st, err)
	}
	// funlinkat only removes when the name still matches the fd.
	if err := p.FUnlinkAt(dfd, ffd, "alias"); err != nil {
		t.Fatalf("FUnlinkAt: %v", err)
	}
	if err := p.UnlinkAt(AtCWD, "orig", false); err != nil {
		t.Fatal(err)
	}
	if err := p.FUnlinkAt(dfd, ffd, "orig"); !errors.Is(err, errno.ENOENT) {
		t.Fatalf("FUnlinkAt gone = %v", err)
	}
}

func TestFRenameAt(t *testing.T) {
	_, p := testWorld(t, false)
	ffd, _ := p.OpenAt(AtCWD, "src", OCreate|OWrite, 0o644)
	dfd, _ := p.OpenAt(AtCWD, ".", ORead|ODirectory, 0)
	if err := p.FRenameAt(ffd, dfd, "src", dfd, "dst"); err != nil {
		t.Fatalf("FRenameAt: %v", err)
	}
	if _, err := p.FStatAt(AtCWD, "dst", true); err != nil {
		t.Fatal("dst missing after frenameat")
	}
	// Stale source name now fails.
	if err := p.FRenameAt(ffd, dfd, "src", dfd, "other"); !errors.Is(err, errno.ENOENT) {
		t.Fatalf("stale frenameat = %v", err)
	}
}

func TestSpawnWaitEcho(t *testing.T) {
	k, p := testWorld(t, false)
	k.RegisterBinary("true", func(p *Proc, argv []string) int { return 0 })
	vn, err := k.FS.WriteFile("/bin/true", []byte("#!bin:true\n"), 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	code, err := p.SpawnWait(vn, nil, SpawnAttr{})
	if err != nil || code != 0 {
		t.Fatalf("SpawnWait = %d, %v", code, err)
	}
}

func TestSpawnStdioPipes(t *testing.T) {
	k, p := testWorld(t, false)
	k.RegisterBinary("upper", func(p *Proc, argv []string) int {
		buf := make([]byte, 64)
		n, _ := p.Read(0, buf)
		out := make([]byte, n)
		for i := 0; i < n; i++ {
			c := buf[i]
			if 'a' <= c && c <= 'z' {
				c -= 32
			}
			out[i] = c
		}
		p.Write(1, out)
		return 0
	})
	vn, _ := k.FS.WriteFile("/bin/upper", []byte("#!bin:upper\n"), 0o755, 0, 0)

	inR, inW, _ := p.MakePipe()
	outR, outW, _ := p.MakePipe()
	p.Write(inW, []byte("hi"))
	p.Close(inW)

	inFD, _ := p.FD(inR)
	outFD, _ := p.FD(outW)
	child, err := p.Spawn(vn, nil, SpawnAttr{Stdin: inFD, Stdout: outFD})
	if err != nil {
		t.Fatal(err)
	}
	p.Close(outW) // drop parent's write end so EOF propagates
	if _, err := p.Wait(child.PID()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := p.Read(outR, buf)
	if string(buf[:n]) != "HI" {
		t.Fatalf("child output = %q", buf[:n])
	}
}

func TestUlimitNoFile(t *testing.T) {
	_, p := testWorld(t, false)
	lim := p.Limits()
	lim.MaxOpenFiles = 3
	p.SetLimits(lim)
	var fds []int
	for i := 0; i < 3; i++ {
		fd, err := p.OpenAt(AtCWD, "/etc/passwd", ORead, 0)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	if _, err := p.OpenAt(AtCWD, "/etc/passwd", ORead, 0); !errors.Is(err, errno.EMFILE) {
		t.Fatalf("over-limit open = %v, want EMFILE", err)
	}
	for _, fd := range fds {
		p.Close(fd)
	}
}

func TestUlimitFileSize(t *testing.T) {
	_, p := testWorld(t, false)
	lim := p.Limits()
	lim.MaxFileSize = 4
	p.SetLimits(lim)
	fd, _ := p.OpenAt(AtCWD, "big", OCreate|OWrite, 0o644)
	if _, err := p.Write(fd, []byte("12345")); !errors.Is(err, errno.EFBIG) {
		t.Fatalf("oversized write = %v, want EFBIG", err)
	}
}

// --- sandbox session behaviour ---

// sandboxProc forks p into an entered session holding the given grants.
func sandboxProc(t *testing.T, p *Proc, grants map[string]*priv.Grant) *Proc {
	t.Helper()
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	for path, g := range grants {
		vn := p.Kernel().FS.MustResolve(path)
		if err := child.ShillGrant(vn, g); err != nil {
			t.Fatalf("grant %s: %v", path, err)
		}
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	return child
}

// TestFigure8LookupPropagation reproduces both panels of Figure 8:
// resolving open("../alice/dog.jpg", O_RDONLY) from /home/bob in a
// sandbox.
func TestFigure8LookupPropagation(t *testing.T) {
	lookupWithRead := priv.NewGrant(priv.RLookup).
		WithDerived(priv.RLookup, priv.NewGrant(priv.RRead, priv.RLookup).
			WithDerived(priv.RLookup, priv.NewGrant(priv.RRead)))

	t.Run("left: no privilege on /home, open fails", func(t *testing.T) {
		_, p := testWorld(t, true)
		sb := sandboxProc(t, p, map[string]*priv.Grant{
			"/home/alice": lookupWithRead,
			"/home/bob":   priv.NewGrant(priv.RLookup),
		})
		_, err := sb.OpenAt(AtCWD, "../alice/dog.jpg", ORead, 0)
		if !errors.Is(err, errno.EACCES) {
			t.Fatalf("open = %v, want EACCES", err)
		}
	})

	t.Run("right: +lookup on /home, open succeeds and propagates", func(t *testing.T) {
		k, p := testWorld(t, true)
		sb := sandboxProc(t, p, map[string]*priv.Grant{
			"/home/alice": lookupWithRead,
			"/home/bob":   priv.NewGrant(priv.RLookup),
			"/home":       priv.NewGrant(priv.RLookup),
		})
		fd, err := sb.OpenAt(AtCWD, "../alice/dog.jpg", ORead, 0)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		buf := make([]byte, 4)
		if _, err := sb.Read(fd, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		// The +read privilege must have been propagated to dog.jpg.
		dog := k.FS.MustResolve("/home/alice/dog.jpg")
		g := k.Policy.SessionGrantOn(sb.Session(), dog)
		if !g.Has(priv.RRead) {
			t.Fatalf("dog.jpg grant = %v, want +read", g)
		}
		// But /home must NOT have gained privileges via "..".
		home := k.FS.MustResolve("/home")
		hg := k.Policy.SessionGrantOn(sb.Session(), home)
		if hg == nil || hg.Rights != priv.NewSet(priv.RLookup) {
			t.Fatalf("/home grant = %v, want exactly +lookup", hg)
		}
	})
}

func TestDotLookupDoesNotAmplify(t *testing.T) {
	k, p := testWorld(t, true)
	// Footnote 5: +lookup with {+stat} on d, then openat(d, ".") must not
	// give the session +stat on d itself.
	g := priv.NewGrant(priv.RLookup).WithDerived(priv.RLookup, priv.NewGrant(priv.RStat))
	sb := sandboxProc(t, p, map[string]*priv.Grant{"/home/bob": g})
	_, err := sb.OpenAt(AtCWD, ".", ORead|ODirectory, 0)
	if err != nil {
		t.Fatalf("open .: %v", err)
	}
	bob := k.FS.MustResolve("/home/bob")
	got := k.Policy.SessionGrantOn(sb.Session(), bob)
	if got.Has(priv.RStat) {
		t.Fatal("\".\" lookup amplified privileges on the directory")
	}
}

func TestSandboxDeniesUnlabelled(t *testing.T) {
	_, p := testWorld(t, true)
	sb := sandboxProc(t, p, nil)
	if _, err := sb.OpenAt(AtCWD, "/etc/passwd", ORead, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("unlabelled open = %v, want EACCES", err)
	}
}

func TestWriteRequiresWriteAndAppend(t *testing.T) {
	k, p := testWorld(t, true)
	if _, err := k.FS.WriteFile("/home/bob/out.txt", nil, 0o666, 1002, 1002); err != nil {
		t.Fatal(err)
	}
	// Only +write, no +append: the conservative MAC rule (§3.2.3) denies.
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":         priv.NewGrant(priv.RLookup),
		"/home/bob/out.txt": priv.NewGrant(priv.RWrite),
	})
	if _, err := sb.OpenAt(AtCWD, "out.txt", OWrite, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("write-only open = %v, want EACCES", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/bob":         priv.NewGrant(priv.RLookup),
		"/home/bob/out.txt": priv.NewGrant(priv.RWrite, priv.RAppend),
	})
	fd, err := sb2.OpenAt(AtCWD, "out.txt", OWrite, 0)
	if err != nil {
		t.Fatalf("write+append open: %v", err)
	}
	if _, err := sb2.Write(fd, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestCreateFileModifierGrantsOnlyModifierRights(t *testing.T) {
	k, p := testWorld(t, true)
	// Grading-directory contract: create append-only files.
	g := priv.NewGrant(priv.RLookup, priv.RCreateFile).
		WithDerived(priv.RCreateFile, priv.NewGrant(priv.RWrite, priv.RAppend, priv.RStat))
	sb := sandboxProc(t, p, map[string]*priv.Grant{"/home/bob": g})
	fd, err := sb.OpenAt(AtCWD, "grade.log", OCreate|OWrite, 0o644)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := sb.Write(fd, []byte("A+")); err != nil {
		t.Fatalf("append to created file: %v", err)
	}
	// Reading the created file must fail: the modifier gave no +read.
	if _, err := sb.OpenAt(AtCWD, "grade.log", ORead, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("read created file = %v, want EACCES", err)
	}
	vn := k.FS.MustResolve("/home/bob/grade.log")
	got := k.Policy.SessionGrantOn(sb.Session(), vn)
	if got.Has(priv.RRead) {
		t.Fatal("created file has +read it should not have")
	}
}

func TestNoMergeOfConflictingCreateModifiers(t *testing.T) {
	k, p := testWorld(t, true)
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	bob := k.FS.MustResolve("/home/bob")
	readOnlyCreate := priv.NewGrant(priv.RCreateFile).
		WithDerived(priv.RCreateFile, priv.NewGrant(priv.RRead, priv.RStat, priv.RPath))
	writeCreate := priv.NewGrant(priv.RCreateFile).
		WithDerived(priv.RCreateFile, priv.NewGrant(priv.RWrite))
	if err := child.ShillGrant(bob, readOnlyCreate); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillGrant(bob, writeCreate); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	got := k.Policy.SessionGrantOn(child.Session(), bob)
	sub := got.DerivedGrant(priv.RCreateFile)
	if sub.Has(priv.RWrite) {
		t.Fatalf("conflicting create-file modifiers were merged: %v", sub)
	}
	if !sub.Has(priv.RRead) {
		t.Fatalf("original modifier lost: %v", sub)
	}
}

func TestSubSessionAttenuationOnly(t *testing.T) {
	k, p := testWorld(t, true)
	dog := k.FS.MustResolve("/home/alice/dog.jpg")
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/alice/dog.jpg": priv.NewGrant(priv.RRead, priv.RStat),
	})
	// The sandboxed process spawns a sub-session. It may grant at most
	// what it has.
	sub, err := sb.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sub.ShillGrant(dog, priv.NewGrant(priv.RRead)); err != nil {
		t.Fatalf("attenuated grant: %v", err)
	}
	if err := sub.ShillGrant(dog, priv.NewGrant(priv.RWrite)); !errors.Is(err, errno.EPERM) {
		t.Fatalf("amplified grant = %v, want EPERM", err)
	}
}

// TestParentSessionOutlivesChild is the regression test for the session
// lifetime rule: when the only process of S1 moves into child session
// S2, S1's privilege maps must survive (S2's grants are checked against
// them) until S2 itself is gone.
func TestParentSessionOutlivesChild(t *testing.T) {
	k, p := testWorld(t, true)
	dog := k.FS.MustResolve("/home/alice/dog.jpg")
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/home/alice/dog.jpg": priv.NewGrant(priv.RRead, priv.RStat),
	})
	parent := sb.Session()
	if _, err := sb.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	// Give the async cleaner every chance to misbehave.
	for i := 0; i < 100; i++ {
		if g := k.Policy.SessionGrantOn(parent, dog); g == nil {
			t.Fatal("parent session privileges scrubbed while child session lives")
		}
	}
	// Attenuated grants still check out against the live parent.
	if err := sb.ShillGrant(dog, priv.NewGrant(priv.RRead)); err != nil {
		t.Fatalf("grant from parent session: %v", err)
	}
	if err := sb.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	child := sb.Session()
	// When both the child and its process are gone, the chain unwinds.
	sb.Exit(0)
	p.Wait(sb.PID())
	k.Shutdown() // drain cleanup
	if g := k.Policy.SessionGrantOn(child, dog); g != nil {
		t.Fatal("child session privileges survived teardown")
	}
	if g := k.Policy.SessionGrantOn(parent, dog); g != nil {
		t.Fatal("parent session privileges survived teardown")
	}
}

func TestGrantAfterEnterRejected(t *testing.T) {
	k, p := testWorld(t, true)
	sb := sandboxProc(t, p, nil)
	dog := k.FS.MustResolve("/home/alice/dog.jpg")
	if err := sb.ShillGrant(dog, priv.NewGrant(priv.RRead)); !errors.Is(err, errno.EPERM) {
		t.Fatalf("grant after enter = %v, want EPERM", err)
	}
}

func TestProcessConfinement(t *testing.T) {
	k, p := testWorld(t, true)
	k.RegisterBinary("sleepish", func(p *Proc, argv []string) int {
		<-p.Done() // run until killed
		return 0
	})
	vn, _ := k.FS.WriteFile("/bin/sleepish", []byte("#!bin:sleepish\n"), 0o755, 0, 0)
	outsider, err := p.Spawn(vn, nil, SpawnAttr{})
	if err != nil {
		t.Fatal(err)
	}
	sb := sandboxProc(t, p, nil)
	// A sandboxed process cannot signal a process outside its session.
	if err := sb.Kill(outsider.PID()); !errors.Is(err, errno.EPERM) {
		t.Fatalf("cross-session kill = %v, want EPERM", err)
	}
	outsider.Exit(0)
	p.Wait(outsider.PID())
}

func TestFigure7SystemResources(t *testing.T) {
	_, p := testWorld(t, true)
	sb := sandboxProc(t, p, nil)

	// Sysctl: read-only in the sandbox.
	if _, err := sb.SysctlGet("kern.ostype"); err != nil {
		t.Fatalf("sandbox sysctl read: %v", err)
	}
	if err := sb.SysctlSet("kern.ostype", "evil"); !errors.Is(err, errno.EPERM) {
		t.Fatalf("sandbox sysctl write = %v, want EPERM", err)
	}
	// Kernel environment: denied.
	if _, err := sb.KenvGet("kernelname"); !errors.Is(err, errno.EPERM) {
		t.Fatalf("sandbox kenv read = %v, want EPERM", err)
	}
	// Kernel modules: denied — including unloading the MAC module.
	if err := sb.KldUnload("shill.ko"); !errors.Is(err, errno.EPERM) {
		t.Fatalf("sandbox kld unload = %v, want EPERM", err)
	}
	// POSIX and System V IPC: denied.
	if err := sb.SemOpen("/sem", 1); !errors.Is(err, errno.EPERM) {
		t.Fatalf("sandbox sem_open = %v, want EPERM", err)
	}
	if err := sb.ShmGet(42, 128); !errors.Is(err, errno.EPERM) {
		t.Fatalf("sandbox shmget = %v, want EPERM", err)
	}

	// Outside a sandbox all of these pass the MAC layer (DAC may still
	// apply).
	if _, err := p.SysctlGet("kern.ostype"); err != nil {
		t.Fatalf("ambient sysctl: %v", err)
	}
	if _, err := p.KenvGet("kernelname"); err != nil {
		t.Fatalf("ambient kenv: %v", err)
	}
	if err := p.SemOpen("/sem", 1); err != nil {
		t.Fatalf("ambient sem_open: %v", err)
	}
}

func TestDebugSessionAutoGrants(t *testing.T) {
	k, p := testWorld(t, true)
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(SessionOptions{Debug: true}); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	// With no grants at all, a debug session can still open the file —
	// and the log records what would have been needed.
	fd, err := child.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatalf("debug open: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := child.Read(fd, buf); err != nil {
		t.Fatal(err)
	}
	ag := child.Session().Log().AutoGrants()
	if len(ag) == 0 {
		t.Fatal("no auto-grants recorded")
	}
	var sawLookup, sawRead bool
	for _, e := range ag {
		if e.Rights.Has(priv.RLookup) {
			sawLookup = true
		}
		if e.Rights.Has(priv.RRead) {
			sawRead = true
		}
	}
	if !sawLookup || !sawRead {
		t.Fatalf("auto-grants missing lookup/read: %v", ag)
	}
	_ = k
}

func TestSessionTeardownScrubsPrivmaps(t *testing.T) {
	k, p := testWorld(t, true)
	dog := k.FS.MustResolve("/home/alice/dog.jpg")
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.ShillInit(SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillGrant(dog, priv.NewGrant(priv.RRead)); err != nil {
		t.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		t.Fatal(err)
	}
	sess := child.Session()
	child.Exit(0)
	if _, err := p.Wait(child.PID()); err != nil {
		t.Fatal(err)
	}
	k.Shutdown() // drain the async cleaner
	if g := k.Policy.SessionGrantOn(sess, dog); g != nil {
		t.Fatalf("privilege map entry survived teardown: %v", g)
	}
}

func TestShillInstalledNoSessionIsTransparent(t *testing.T) {
	_, p := testWorld(t, true)
	// With the module installed but no session, everything DAC allows
	// works (the "SHILL installed" configuration).
	fd, err := p.OpenAt(AtCWD, "/home/alice/dog.jpg", ORead, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := p.Read(fd, buf); err != nil {
		t.Fatal(err)
	}
}

func TestExecRequiresPrivilege(t *testing.T) {
	k, p := testWorld(t, true)
	k.RegisterBinary("true", func(p *Proc, argv []string) int { return 0 })
	vn, _ := k.FS.WriteFile("/bin/true", []byte("#!bin:true\n"), 0o755, 0, 0)
	sb := sandboxProc(t, p, nil)
	if _, err := sb.SpawnWait(vn, nil, SpawnAttr{}); !errors.Is(err, errno.EACCES) {
		t.Fatalf("exec without +exec = %v, want EACCES", err)
	}
	sb2 := sandboxProc(t, p, map[string]*priv.Grant{
		"/bin/true": priv.NewGrant(priv.RExec, priv.RRead, priv.RStat),
	})
	code, err := sb2.SpawnWait(vn, nil, SpawnAttr{})
	if err != nil || code != 0 {
		t.Fatalf("exec with +exec = %d, %v", code, err)
	}
}

func TestSpawnedChildSharesSession(t *testing.T) {
	k, p := testWorld(t, true)
	var childSession *Session
	k.RegisterBinary("probe", func(p *Proc, argv []string) int {
		childSession = p.Session()
		return 0
	})
	vn, _ := k.FS.WriteFile("/bin/probe", []byte("#!bin:probe\n"), 0o755, 0, 0)
	sb := sandboxProc(t, p, map[string]*priv.Grant{
		"/bin/probe": priv.NewGrant(priv.RExec, priv.RRead, priv.RStat),
	})
	if _, err := sb.SpawnWait(vn, nil, SpawnAttr{}); err != nil {
		t.Fatal(err)
	}
	if childSession != sb.Session() {
		t.Fatal("spawned child not placed in parent's session")
	}
}

func TestMACFrameworkComposition(t *testing.T) {
	k, p := testWorld(t, false)
	denyAll := &denyPolicy{}
	if err := k.MAC.Register(denyAll); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenAt(AtCWD, "/etc/passwd", ORead, 0); !errors.Is(err, errno.EACCES) {
		t.Fatalf("deny policy not consulted: %v", err)
	}
	if err := k.MAC.Unregister("deny"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenAt(AtCWD, "/etc/passwd", ORead, 0); err != nil {
		t.Fatalf("open after unregister: %v", err)
	}
}

type denyPolicy struct{ mac.BasePolicy }

func (*denyPolicy) Name() string { return "deny" }
func (*denyPolicy) VnodeCheck(*mac.Cred, mac.Labeled, mac.VnodeOp, string) error {
	return errno.EACCES
}

func TestSingleComponentValidName(t *testing.T) {
	if vfs.ValidName("alice/dog.jpg") {
		t.Fatal("multi-component name reported valid")
	}
	if !vfs.ValidName("alice") {
		t.Fatal("single component rejected")
	}
}
