package repro

// Benchmarks regenerating the paper's evaluation (§4.2). Figure 9 runs
// each case study under the four configurations; Figure 10 reports the
// performance breakdown; Figure 11 measures per-syscall sandbox
// overhead. Absolute times are not comparable to the paper's testbed
// (this kernel is a simulator); the shape — which configuration wins and
// by how much — is what EXPERIMENTS.md compares.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/binaries"
	"repro/internal/contract"
	"repro/internal/kernel"
	"repro/internal/priv"
	"repro/internal/prof"
	"repro/shill"
)

// fig9Config pairs a configuration label with how to build and run it.
type fig9Config struct {
	name    string
	install bool
	mode    shill.Mode
}

var fig9Configs = []fig9Config{
	{"Baseline", false, shill.ModeAmbient},
	{"ShillInstalled", true, shill.ModeAmbient},
	{"Sandboxed", true, shill.ModeSandboxed},
	{"ShillVersion", true, shill.ModeShill},
}

// bg: benchmarks run without deadlines.
var bg = context.Background()

// benchMachine builds a machine, failing the benchmark on error.
func benchMachine(b *testing.B, opts ...shill.Option) *shill.Machine {
	b.Helper()
	m, err := shill.NewMachine(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Figure 9: Grading ---

func BenchmarkFigure9Grading(b *testing.B) {
	for _, cfg := range fig9Configs {
		b.Run(cfg.name, func(b *testing.B) {
			s := benchMachine(b, shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
			defer s.Close()
			s.BuildGradingCourse(shill.GradingWorkload{Students: shill.DefaultGrading.Students,
				Tests: shill.DefaultGrading.Tests, Malicious: false})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s.ResetGradingOutputs()
				s.ConsoleText()
				b.StartTimer()
				if err := s.RunGrading(bg, cfg.mode); err != nil {
					b.Fatalf("grading[%s]: %v", cfg.name, err)
				}
			}
		})
	}
}

// --- Parallel Figure 9: concurrent grading sessions ---

// BenchmarkParallelGrading measures aggregate grading throughput with N
// independent sandboxed sessions running concurrently against one
// kernel — the multi-user workload a production SHILL host serves. Each
// session grades a private course through its own runtime process and
// console device. SpawnLatency simulates the real testbed's per-exec
// cost (the in-memory simulator otherwise collapses fork/exec to ~0),
// so the scripts/sec metric reflects how well sessions overlap genuine
// per-sandbox blocking: it must rise with the session count.
// The audit dimension measures the always-on audit trail's cost: the
// acceptance bar for internal/audit is that audit=on regresses
// scripts/sec by less than ~5% versus audit=off at every session count
// (compare with `benchstat`, or run `benchfig -fig parallel`, which
// prints the delta directly).
func BenchmarkParallelGrading(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		for _, auditOn := range []bool{true, false} {
			b.Run(fmt.Sprintf("sessions=%d/audit=%v", n, auditOn), func(b *testing.B) {
				opts := []shill.Option{
					shill.WithConsoleLimit(1 << 20),
					shill.WithSpawnLatency(500 * time.Microsecond),
				}
				if !auditOn {
					opts = append(opts, shill.WithAuditDisabled())
				}
				s := benchMachine(b, opts...)
				defer s.Close()
				w := shill.GradingWorkload{Students: 4, Tests: 2}
				b.ResetTimer()
				var graded time.Duration
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s.PrepareGradingSessions(n, w) // stage + reset outside the timed region
					b.StartTimer()
					start := time.Now()
					if _, err := s.RunPreparedGradingSessions(bg, n, shill.ModeShill); err != nil {
						b.Fatalf("parallel grading[%d]: %v", n, err)
					}
					graded += time.Since(start)
				}
				b.ReportMetric(float64(n)*float64(b.N)/graded.Seconds(), "scripts/sec")
			})
		}
	}
}

// --- Figure 9: Emacs package management sub-benchmarks ---

// emacsBenchSetup prepares the prerequisite state for a step.
func emacsBenchSetup(s *shill.Machine, step shill.EmacsStep) error {
	order := map[shill.EmacsStep]int{
		shill.StepDownload: 0, shill.StepUntar: 1, shill.StepConfigure: 2,
		shill.StepMake: 3, shill.StepInstall: 4, shill.StepUninstall: 5,
	}
	for _, prior := range shill.AllEmacsSteps {
		if order[prior] >= order[step] {
			return nil
		}
		if err := s.RunEmacsStep(bg, prior, shill.ModeAmbient); err != nil {
			return fmt.Errorf("setup %s: %w", prior, err)
		}
	}
	return nil
}

// emacsBenchReset undoes one step so it can run again.
func emacsBenchReset(s *shill.Machine, step shill.EmacsStep) error {
	switch step {
	case shill.StepDownload:
		s.RemovePath("/home/user/Downloads/emacs-24.3.tar")
	case shill.StepUntar:
		s.RemoveTree("/home/user/build/emacs-24.3")
	case shill.StepConfigure:
		s.RemovePath("/home/user/build/emacs-24.3/Makefile")
		s.RemovePath("/home/user/build/emacs-24.3/config.status")
	case shill.StepMake:
		s.RemovePath("/home/user/build/emacs-24.3/emacs")
	case shill.StepInstall:
		s.RemoveTree("/home/user/.local/bin")
		s.RemoveTree("/home/user/.local/share")
	case shill.StepUninstall:
		// Re-install before each uninstall iteration.
		return s.RunEmacsStep(bg, shill.StepInstall, shill.ModeAmbient)
	}
	return nil
}

func BenchmarkFigure9Emacs(b *testing.B) {
	for _, step := range shill.AllEmacsSteps {
		for _, cfg := range fig9Configs[:3] { // no separate SHILL version per sub-step
			b.Run(fmt.Sprintf("%s/%s", step, cfg.name), func(b *testing.B) {
				s := benchMachine(b, shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
				defer s.Close()
				s.BuildEmacsOrigin(shill.DefaultEmacs)
				stop, err := s.StartOrigin()
				if err != nil {
					b.Fatalf("origin: %v", err)
				}
				defer stop()
				if err := emacsBenchSetup(s, step); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := emacsBenchReset(s, step); err != nil {
						b.Fatal(err)
					}
					s.ConsoleText()
					b.StartTimer()
					if err := s.RunEmacsStep(bg, step, cfg.mode); err != nil {
						b.Fatalf("%s[%s]: %v", step, cfg.name, err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure9EmacsShill is the "Emacs" column's SHILL version: the
// whole package-management script with per-function contracts.
func BenchmarkFigure9EmacsShill(b *testing.B) {
	s := benchMachine(b, shill.WithConsoleLimit(1<<20))
	defer s.Close()
	s.BuildEmacsOrigin(shill.DefaultEmacs)
	stop, err := s.StartOrigin()
	if err != nil {
		b.Fatalf("origin: %v", err)
	}
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.ResetEmacsOutputs()
		s.ConsoleText()
		b.StartTimer()
		if err := s.RunEmacsShill(bg); err != nil {
			b.Fatalf("pkg_emacs: %v", err)
		}
	}
}

// --- Figure 9: Apache ---

func BenchmarkFigure9Apache(b *testing.B) {
	configs := []fig9Config{fig9Configs[0], fig9Configs[1], fig9Configs[2]}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			s := benchMachine(b, shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
			defer s.Close()
			w := shill.ApacheWorkload{FileMB: 2, Requests: 20, Concurrency: 8}
			s.BuildWWW(w)
			b.SetBytes(int64(w.FileMB) << 20 * int64(w.Requests))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.RunApache(bg, cfg.mode, w); err != nil {
					b.Fatalf("apache[%s]: %v", cfg.name, err)
				}
			}
		})
	}
}

// --- Figure 9: Find ---

func BenchmarkFigure9Find(b *testing.B) {
	for _, cfg := range fig9Configs {
		b.Run(cfg.name, func(b *testing.B) {
			s := benchMachine(b, shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
			defer s.Close()
			s.BuildSrcTree(shill.DefaultFind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.RunFind(bg, cfg.mode); err != nil {
					b.Fatalf("find[%s]: %v", cfg.name, err)
				}
			}
		})
	}
}

// --- Figure 10: performance breakdown ---

// BenchmarkFigure10 reports, per benchmark, the share of time in runtime
// startup, sandbox setup, sandboxed execution, and remaining (script
// evaluation and contract checking), plus the sandbox count — the
// paper's Figure 10 rows.
func BenchmarkFigure10(b *testing.B) {
	cases := []struct {
		name string
		prep func(*shill.Machine)
		run  func(*shill.Machine) error
	}{
		{"Uninstall", func(s *shill.Machine) {
			s.BuildEmacsOrigin(shill.DefaultEmacs)
			stop, err := s.StartOrigin()
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(stop)
			if err := emacsBenchSetup(s, shill.StepUninstall); err != nil {
				b.Fatal(err)
			}
			if err := s.RunEmacsStep(bg, shill.StepInstall, shill.ModeAmbient); err != nil {
				b.Fatal(err)
			}
		}, func(s *shill.Machine) error {
			if err := s.RunEmacsStep(bg, shill.StepInstall, shill.ModeAmbient); err != nil {
				return err
			}
			return s.RunEmacsStep(bg, shill.StepUninstall, shill.ModeSandboxed)
		}},
		{"Download", func(s *shill.Machine) {
			s.BuildEmacsOrigin(shill.DefaultEmacs)
			stop, err := s.StartOrigin()
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(stop)
		}, func(s *shill.Machine) error {
			s.RemovePath("/home/user/Downloads/emacs-24.3.tar")
			return s.RunEmacsStep(bg, shill.StepDownload, shill.ModeSandboxed)
		}},
		{"Grading", func(s *shill.Machine) {
			s.BuildGradingCourse(shill.GradingWorkload{Students: shill.DefaultGrading.Students,
				Tests: shill.DefaultGrading.Tests})
		}, func(s *shill.Machine) error {
			s.ResetGradingOutputs()
			return s.RunGrading(bg, shill.ModeShill)
		}},
		{"Find", func(s *shill.Machine) {
			s.BuildSrcTree(shill.DefaultFind)
		}, func(s *shill.Machine) error {
			return s.RunFind(bg, shill.ModeShill)
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s := benchMachine(b, shill.WithConsoleLimit(1<<20))
			defer s.Close()
			c.prep(s)
			s.Prof().Reset()
			contract.ResetCheckTime()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if err := c.run(s); err != nil {
					b.Fatalf("%s: %v", c.name, err)
				}
			}
			total := time.Since(start)
			s.FlushAuditProf()
			bd := s.Prof().Report(total)
			n := float64(b.N)
			b.ReportMetric(bd.Startup.Seconds()/n, "startup-s/op")
			b.ReportMetric(bd.SandboxSetup.Seconds()/n, "setup-s/op")
			b.ReportMetric(bd.SandboxExec.Seconds()/n, "exec-s/op")
			b.ReportMetric(bd.AuditEmit.Seconds()/n, "audit-s/op")
			b.ReportMetric(bd.Remaining.Seconds()/n, "remaining-s/op")
			b.ReportMetric(contract.CheckTime().Seconds()/n, "contract-s/op")
			b.ReportMetric(float64(bd.Sandboxes)/n, "sandboxes/op")
		})
	}
}

// --- Figure 11: syscall microbenchmarks ---

// microWorld builds the nested-directory world the open-read-close
// benchmarks walk and returns a proc: either an ordinary one ("SHILL
// installed") or one inside an entered session holding capabilities for
// the benchmark objects ("Sandboxed").
func microWorld(b *testing.B, sandboxed bool) (*kernel.Kernel, *kernel.Proc) {
	b.Helper()
	k := kernel.New()
	k.InstallShillModule()
	b.Cleanup(k.Shutdown)
	mustWrite := func(path string, data []byte) {
		if _, err := k.FS.WriteFile(path, data, 0o666, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	big := make([]byte, 1<<20)
	mustWrite("/data/file1m.bin", big)
	mustWrite("/data/file.bin", []byte("0123456789"))
	mustWrite("/data/a/b/c/d/deep.bin", []byte("0123456789"))
	if _, err := k.FS.MkdirAll("/work", 0o777, 0, 0); err != nil {
		b.Fatal(err)
	}

	p := k.NewProc(0, 0)
	if !sandboxed {
		if err := p.Chdir("/data"); err != nil {
			b.Fatal(err)
		}
		return k, p
	}
	child, err := p.Fork()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
		b.Fatal(err)
	}
	// Grant a read-everything capability on /data (lookup inherits) and
	// full create rights on /work, mirroring a sandbox that was handed
	// those two directory capabilities.
	grant := func(path string, g *priv.Grant) {
		if err := child.ShillGrant(k.FS.MustResolve(path), g); err != nil {
			b.Fatal(err)
		}
	}
	grant("/", priv.NewGrant(priv.RLookup, priv.RStat, priv.RPath))
	grant("/data", priv.GrantOf(priv.ReadOnlyDir))
	grant("/work", priv.GrantOf(priv.NewSet(
		priv.RLookup, priv.RContents, priv.RStat, priv.RPath,
		priv.RCreateFile, priv.RUnlinkFile, priv.RWrite, priv.RAppend)))
	// Set the working directory while the session still accepts
	// configuration, as sandbox.Exec does.
	if err := child.Chdir("/data"); err != nil {
		b.Fatal(err)
	}
	if err := child.ShillEnter(); err != nil {
		b.Fatal(err)
	}
	return k, child
}

func BenchmarkFigure11(b *testing.B) {
	for _, cfg := range []struct {
		name      string
		sandboxed bool
	}{{"ShillInstalled", false}, {"Sandboxed", true}} {
		b.Run("pread-1B/"+cfg.name, func(b *testing.B) {
			_, p := microWorld(b, cfg.sandboxed)
			fd, err := p.OpenAt(kernel.AtCWD, "/data/file.bin", kernel.ORead, 0)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pread(fd, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("pread-1MB/"+cfg.name, func(b *testing.B) {
			_, p := microWorld(b, cfg.sandboxed)
			fd, err := p.OpenAt(kernel.AtCWD, "/data/file1m.bin", kernel.ORead, 0)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<20)
			b.SetBytes(1 << 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pread(fd, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("create-unlink/"+cfg.name, func(b *testing.B) {
			_, p := microWorld(b, cfg.sandboxed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "/work/tmpfile", kernel.OCreate|kernel.OWrite, 0o644)
				if err != nil {
					b.Fatal(err)
				}
				p.Close(fd)
				if err := p.UnlinkAt(kernel.AtCWD, "/work/tmpfile", false); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("open-read-close-1lookup/"+cfg.name, func(b *testing.B) {
			_, p := microWorld(b, cfg.sandboxed)
			buf := make([]byte, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "file.bin", kernel.ORead, 0)
				if err != nil {
					b.Fatal(err)
				}
				p.Read(fd, buf)
				p.Close(fd)
			}
		})
		b.Run("open-read-close-5lookups/"+cfg.name, func(b *testing.B) {
			_, p := microWorld(b, cfg.sandboxed)
			buf := make([]byte, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fd, err := p.OpenAt(kernel.AtCWD, "a/b/c/d/deep.bin", kernel.ORead, 0)
				if err != nil {
					b.Fatal(err)
				}
				p.Read(fd, buf)
				p.Close(fd)
			}
		})
	}
}

// BenchmarkLookupDepthSweep verifies the §4.2 claim that sandbox
// overhead on open grows linearly with path depth.
func BenchmarkLookupDepthSweep(b *testing.B) {
	for depth := 1; depth <= 8; depth++ {
		for _, cfg := range []struct {
			name      string
			sandboxed bool
		}{{"ShillInstalled", false}, {"Sandboxed", true}} {
			b.Run(fmt.Sprintf("depth%d/%s", depth, cfg.name), func(b *testing.B) {
				_, p := microWorld(b, cfg.sandboxed)
				path := "/data"
				rel := ""
				for i := 1; i < depth; i++ {
					rel += fmt.Sprintf("d%d/", i)
				}
				rel += "leaf.bin"
				k := p.Kernel()
				if _, err := k.FS.WriteFile(path+"/"+rel, []byte("x"), 0o666, 0, 0); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fd, err := p.OpenAt(kernel.AtCWD, rel, kernel.ORead, 0)
					if err != nil {
						b.Fatal(err)
					}
					p.Close(fd)
				}
			})
		}
	}
}

// --- Ablations (DESIGN.md §Key design decisions) ---

// BenchmarkAblationPropagation compares lookup-heavy opens with
// propagation enabled (normal), disabled with per-object grants
// (the configuration propagation replaces), and shows the check-only
// cost.
func BenchmarkAblationPropagation(b *testing.B) {
	b.Run("propagation", func(b *testing.B) {
		_, p := microWorld(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd, err := p.OpenAt(kernel.AtCWD, "a/b/c/d/deep.bin", kernel.ORead, 0)
			if err != nil {
				b.Fatal(err)
			}
			p.Close(fd)
		}
	})
	b.Run("static-grants", func(b *testing.B) {
		k, p := microWorld(b, true)
		k.Policy.SetPropagation(false)
		b.Cleanup(func() { k.Policy.SetPropagation(true) })
		// Without propagation every object needs an explicit grant; this
		// is the configuration the post_lookup hook exists to avoid.
		sess := p.Session()
		for _, path := range []string{"/data/a", "/data/a/b", "/data/a/b/c", "/data/a/b/c/d", "/data/a/b/c/d/deep.bin"} {
			k.Policy.GrantToSession(sess, k.FS.MustResolve(path), priv.GrantOf(priv.ReadOnlyDir))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd, err := p.OpenAt(kernel.AtCWD, "a/b/c/d/deep.bin", kernel.ORead, 0)
			if err != nil {
				b.Fatal(err)
			}
			p.Close(fd)
		}
	})
}

// BenchmarkSandboxSetup isolates the cost of creating one sandbox (the
// unit cost behind Grading's 5,371 and Find's 15,292 setups). It works
// on a bare kernel: the sandbox lifecycle is below the embedding API.
func BenchmarkSandboxSetup(b *testing.B) {
	k := kernel.New()
	binaries.Register(k)
	k.InstallShillModule()
	b.Cleanup(k.Shutdown)
	if _, err := k.FS.WriteFile("/bin/true", []byte("#!bin:true\n"), 0o755, 0, 0); err != nil {
		b.Fatal(err)
	}
	runtime := k.NewProc(1001, 1001)
	vn := k.FS.MustResolve("/bin/true")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := runtime.Fork()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := child.ShillInit(kernel.SessionOptions{}); err != nil {
			b.Fatal(err)
		}
		if err := child.ShillGrant(vn, priv.GrantOf(priv.ExecFile)); err != nil {
			b.Fatal(err)
		}
		if err := child.ShillEnter(); err != nil {
			b.Fatal(err)
		}
		if err := child.Exec(vn, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := runtime.Wait(child.PID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContractCheck isolates contract-application cost: the
// pkg_native result contract, checked once per sandbox, dominates
// contract time in the paper's profile.
func BenchmarkContractCheck(b *testing.B) {
	s := benchMachine(b)
	defer s.Close()
	c := &contract.FuncC{
		Params: []contract.Param{{Name: "args", C: contract.IsList}},
		Result: contract.IsNum,
	}
	fn := benchCallable{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrapped, err := contract.Apply(c, fn, contract.Blame{Pos: "bench", Neg: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wrapped.(contract.Callable).Call([]contract.Value{[]contract.Value{}}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

type benchCallable struct{}

func (benchCallable) FuncName() string { return "bench" }
func (benchCallable) Call([]contract.Value, map[string]contract.Value) (contract.Value, error) {
	return float64(0), nil
}

// BenchmarkInterpreterStartup measures the fixed per-run cost the paper
// calls "Racket startup" — the dominant cost of the Download and
// Uninstall benchmarks (§4.2).
func BenchmarkInterpreterStartup(b *testing.B) {
	s := benchMachine(b)
	defer s.Close()
	sess := s.DefaultSession()
	src := "#lang shill/ambient\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(bg, shill.Script{Name: "empty.ambient", Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPkgNative measures wallet construction plus pkg_native — the
// per-tool packaging cost, including the ldd sandbox.
func BenchmarkPkgNative(b *testing.B) {
	s := benchMachine(b, shill.WithConsoleLimit(1<<20))
	defer s.Close()
	s.AddScript("pkg.cap", `#lang shill/cap
require shill/native;

provide pack : {wallet : native_wallet} -> any;
pack = fun(wallet) { pkg_native("grep", wallet); };
`)
	ambient := `#lang shill/ambient
require shill/native;
require "pkg.cap";

root = open_dir("/");
wallet = create_wallet();
populate_native_wallet(wallet, root, "/usr/bin:/bin", "/lib:/usr/local/lib", pipe_factory());
pack(wallet);
`
	sess := s.DefaultSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Run(bg, shill.Script{Name: "bench.ambient", Source: ambient}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- profiling sanity: the prof package is exercised by benches ---

var _ = prof.Startup
