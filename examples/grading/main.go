// Grading: the paper's homework-grading case study (§4.1) in all three
// configurations, demonstrating the difference between coarse-grained
// sandboxing and SHILL's fine-grained guarantees.
//
// The course contains honest students, a student whose program reads
// another student's submission (cheating), and one that tries to corrupt
// the test suite (vandalism).
//
//	go run ./examples/grading
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/shill"
)

func main() {
	workload := shill.GradingWorkload{Students: 6, Tests: 3, Malicious: true}

	type outcome struct {
		mode          string
		cheaterPassed bool
		testsCorrupt  bool
		honestOK      bool
	}
	var results []outcome

	for _, cfg := range []struct {
		name    string
		install bool
		mode    shill.Mode
	}{
		{"Baseline (ambient bash)", false, shill.ModeAmbient},
		{"Sandboxed bash (coarse contract)", true, shill.ModeSandboxed},
		{"Pure SHILL (fine-grained contracts)", true, shill.ModeShill},
	} {
		s, err := shill.NewMachine(shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
		if err != nil {
			log.Fatal(err)
		}
		s.BuildGradingCourse(workload)
		if err := s.RunGrading(context.Background(), cfg.mode); err != nil {
			log.Fatalf("%s: %v\nconsole: %s", cfg.name, err, s.ConsoleText())
		}
		honest := s.GradeFor("student000")
		cheater := s.GradeFor("zz_cheater")
		tests, _ := s.ReadFile("/course/tests/t000")
		results = append(results, outcome{
			mode:          cfg.name,
			cheaterPassed: contains(cheater, "pass t000"),
			testsCorrupt:  tests == "pwned",
			honestOK:      contains(honest, "compiled") && !contains(honest, "fail"),
		})
		s.Close()
	}

	fmt.Printf("%-38s %-16s %-16s %-16s\n", "configuration", "honest graded", "cheater blocked", "tests protected")
	for _, r := range results {
		fmt.Printf("%-38s %-16v %-16v %-16v\n", r.mode, r.honestOK, !r.cheaterPassed, !r.testsCorrupt)
	}
	fmt.Println("\nThe sandboxed bash script protects the test suite but cannot isolate")
	fmt.Println("students from each other; the pure SHILL script does both (§4.1).")
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
