// Grading: the paper's homework-grading case study (§4.1) in all three
// configurations, demonstrating the difference between coarse-grained
// sandboxing and SHILL's fine-grained guarantees.
//
// The course contains honest students, a student whose program reads
// another student's submission (cheating), and one that tries to corrupt
// the test suite (vandalism).
//
// The course is staged once and captured as a machine image; each
// configuration then boots from that image in microseconds. The three
// runs share one immutable base layer copy-on-write, so every
// configuration grades the identical course no matter what the previous
// run's malicious students did to their copy.
//
//	go run ./examples/grading
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/shill"
)

func main() {
	workload := shill.GradingWorkload{Students: 6, Tests: 3, Malicious: true}

	// Stage the course once and snapshot it: the image is the prebuilt,
	// content-addressed grading environment.
	builder, err := shill.NewMachine(shill.WithConsoleLimit(1 << 20))
	if err != nil {
		log.Fatal(err)
	}
	builder.BuildGradingCourse(workload)
	img, err := builder.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	builder.Close()
	fmt.Printf("course image %s… (%d students, %d tests)\n\n", img.ID()[:12], workload.Students, workload.Tests)

	type outcome struct {
		mode          string
		cheaterPassed bool
		testsCorrupt  bool
		honestOK      bool
	}
	var results []outcome

	for _, cfg := range []struct {
		name    string
		install bool
		mode    shill.Mode
	}{
		{"Baseline (ambient bash)", false, shill.ModeAmbient},
		{"Sandboxed bash (coarse contract)", true, shill.ModeSandboxed},
		{"Pure SHILL (fine-grained contracts)", true, shill.ModeShill},
	} {
		// Each configuration restores the pristine course from the image;
		// explicit options still decide whether the SHILL module is
		// installed on the restored machine.
		s, err := shill.RestoreMachine(img, shill.WithModule(cfg.install), shill.WithConsoleLimit(1<<20))
		if err != nil {
			log.Fatal(err)
		}
		if err := s.RunGrading(context.Background(), cfg.mode); err != nil {
			log.Fatalf("%s: %v\nconsole: %s", cfg.name, err, s.ConsoleText())
		}
		honest := s.GradeFor("student000")
		cheater := s.GradeFor("zz_cheater")
		tests, _ := s.ReadFile("/course/tests/t000")
		results = append(results, outcome{
			mode:          cfg.name,
			cheaterPassed: contains(cheater, "pass t000"),
			testsCorrupt:  tests == "pwned",
			honestOK:      contains(honest, "compiled") && !contains(honest, "fail"),
		})
		s.Close()
	}

	fmt.Printf("%-38s %-16s %-16s %-16s\n", "configuration", "honest graded", "cheater blocked", "tests protected")
	for _, r := range results {
		fmt.Printf("%-38s %-16v %-16v %-16v\n", r.mode, r.honestOK, !r.cheaterPassed, !r.testsCorrupt)
	}
	fmt.Println("\nThe sandboxed bash script protects the test suite but cannot isolate")
	fmt.Println("students from each other; the pure SHILL script does both (§4.1).")
	fmt.Println("All three configurations booted from the same immutable course image;")
	fmt.Println("each run's damage stayed in its own copy-on-write layer.")
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
