// Quickstart: the paper's running example end to end.
//
// It boots a simulated machine with the SHILL module installed, stages a
// JPEG in the user's home directory, and runs the ambient script of
// Figure 6, which builds a native wallet, mints a capability for the
// file, and invokes the capability-safe jpeginfo script of Figure 4 —
// executing the jpeginfo binary inside a capability-based sandbox.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	s := core.NewSystem(core.Config{InstallModule: true})
	defer s.Close()
	s.LoadCaseScripts()

	// A photo in the user's home directory (the simulated JPEG format
	// starts with "JFIF").
	if _, err := s.K.FS.WriteFile("/home/user/Documents/dog.jpg",
		[]byte("JFIFdog-picture-bytes"), 0o644, core.UserUID, core.UserUID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== capability-safe script (Figure 4) ==")
	fmt.Print(core.ScriptJpeginfoCap)
	fmt.Println("== ambient script (Figure 6) ==")
	fmt.Print(core.ScriptJpeginfoAmbient)

	if err := s.RunAmbient("jpeginfo.ambient", core.ScriptJpeginfoAmbient); err != nil {
		log.Fatalf("script failed: %v", err)
	}
	fmt.Println("== console output ==")
	fmt.Print(s.ConsoleText())
	fmt.Printf("\nsandboxes created: %d (one for pkg_native's ldd run, one for jpeginfo)\n",
		s.Prof.Count(1))

	// The contract is the security guarantee: the same script cannot be
	// tricked into writing the photo, because the arg capability only
	// carries +read and +path.
	fmt.Println("\n== contract enforcement demo ==")
	evil := `#lang shill/ambient
require "evil.cap";

dog = open_file("/home/user/Documents/dog.jpg");
scribble(dog);
`
	s.Scripts["evil.cap"] = `#lang shill/cap

provide scribble : {f : file(+read, +path)} -> void;

scribble = fun(f) {
  err = write(f, "defaced");
  if is_syserror(err) then {
    err;
  }
};
`
	if err := s.RunAmbient("evil.ambient", evil); err != nil {
		fmt.Printf("write through a read-only capability: %v\n", err)
	} else {
		data := s.K.FS.MustResolve("/home/user/Documents/dog.jpg").Bytes()
		fmt.Printf("file contents after the attempt: %q (unchanged)\n", string(data[:7]))
	}
}
