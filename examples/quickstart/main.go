// Quickstart: the paper's running example end to end.
//
// It boots a simulated machine with the SHILL module installed, stages a
// JPEG in the user's home directory, and runs the ambient script of
// Figure 6, which builds a native wallet, mints a capability for the
// file, and invokes the capability-safe jpeginfo script of Figure 4 —
// executing the jpeginfo binary inside a capability-based sandbox.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/shill"
)

func main() {
	m, err := shill.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	session := m.DefaultSession()

	// A photo in the user's home directory (the simulated JPEG format
	// starts with "JFIF").
	if err := m.WriteFile("/home/user/Documents/dog.jpg",
		[]byte("JFIFdog-picture-bytes"), 0o644, shill.UserUID); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== capability-safe script (Figure 4) ==")
	fmt.Print(shill.ScriptJpeginfoCap)
	fmt.Println("== ambient script (Figure 6) ==")
	fmt.Print(shill.ScriptJpeginfoAmbient)

	res, err := session.Run(context.Background(),
		shill.Script{Name: "jpeginfo.ambient", Source: shill.ScriptJpeginfoAmbient})
	if err != nil {
		log.Fatalf("script failed: %v", err)
	}
	fmt.Println("== console output ==")
	fmt.Print(res.Console)
	fmt.Printf("\nsandboxes created: %d (one for pkg_native's ldd run, one for jpeginfo)\n",
		m.SandboxCount())

	// The contract is the security guarantee: the same script cannot be
	// tricked into writing the photo, because the arg capability only
	// carries +read and +path.
	fmt.Println("\n== contract enforcement demo ==")
	evil := `#lang shill/ambient
require "evil.cap";

dog = open_file("/home/user/Documents/dog.jpg");
scribble(dog);
`
	m.AddScript("evil.cap", `#lang shill/cap

provide scribble : {f : file(+read, +path)} -> void;

scribble = fun(f) {
  err = write(f, "defaced");
  if is_syserror(err) then {
    err;
  }
};
`)
	if _, err := session.Run(context.Background(),
		shill.Script{Name: "evil.ambient", Source: evil}); err != nil {
		fmt.Printf("write through a read-only capability: %v\n", err)
	} else {
		data, _ := m.ReadFile("/home/user/Documents/dog.jpg")
		fmt.Printf("file contents after the attempt: %q (unchanged)\n", data[:7])
	}
}
