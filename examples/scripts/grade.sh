# grade.sh SUBMISSIONS TESTS WORK GRADES
# Compile each student's OCaml submission and run it against the test
# suite, recording per-student results under GRADES.
subs=$1
tests=$2
work=$3
grades=$4

for student in $(ls $subs)
do
  sdir=$subs/$student
  wdir=$work/$student
  log=$grades/$student
  mkdir $wdir
  touch $log

  # Stage the submission into the working directory.
  if [ -f $sdir/main.ml ]
  then
    cp $sdir/main.ml $wdir/main.ml
  else
    echo no-submission >> $log
  fi

  # Compile.
  if [ -f $wdir/main.ml ]
  then
    ocamlc -o $wdir/main.byte $wdir/main.ml 2> $wdir/compile.err
    if [ -f $wdir/main.byte ]
    then
      echo compiled >> $log
    else
      echo compile-failed >> $log
    fi
  fi

  # Run the submission and capture its output.
  if [ -f $wdir/main.byte ]
  then
    ocamlrun $wdir/main.byte > $wdir/out.txt 2> $wdir/run.err
    # Score: one expected string per test file.
    for t in $(ls $tests)
    do
      expected=$(cat $tests/$t)
      if grep $expected $wdir/out.txt >> $wdir/grep.out
      then
        echo pass $t >> $log
      else
        echo fail $t >> $log
      fi
    done
  fi
done
echo grading-complete
