// Findgrep: the paper's Find case study (§4.1) — search a source tree
// for .c files containing "mac_" — in its two SHILL variants:
//
//   - a single sandbox around `find /usr/src -name "*.c" -exec grep ...`
//     (coarse: everything under /usr/src readable by one session), and
//
//   - the fine-grained version built on the polymorphic find function of
//     Figure 5, which runs each grep in its own sandbox holding exactly
//     the one file it greps.
//
//     go run ./examples/findgrep
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/shill"
)

func main() {
	w := shill.FindWorkload{Dirs: 8, FilesPerDir: 16, CEvery: 4, MatchEvery: 2}

	for _, cfg := range []struct {
		name string
		mode shill.Mode
	}{
		{"single sandbox (findgrep.cap)", shill.ModeSandboxed},
		{"per-file sandboxes (findgrep_fine.cap)", shill.ModeShill},
	} {
		s, err := shill.NewMachine(shill.WithConsoleLimit(1 << 20))
		if err != nil {
			log.Fatal(err)
		}
		total, cFiles, matches := s.BuildSrcTree(w)
		s.Prof().Reset()
		if err := s.RunFind(context.Background(), cfg.mode); err != nil {
			log.Fatalf("%s: %v\nconsole: %s", cfg.name, err, s.ConsoleText())
		}
		got := strings.Count(s.Matches(), "mac_") - strings.Count(s.Matches(), "mac_-less")
		fmt.Printf("%s\n", cfg.name)
		fmt.Printf("  files visited: %d, .c files: %d, matching lines: %d (expected %d)\n",
			total, cFiles, got, matches)
		fmt.Printf("  sandboxes created: %d\n\n", s.SandboxCount())
		s.Close()
	}

	fmt.Println("The fine-grained version guarantees the files grep reads are exactly")
	fmt.Println("the files find selected — paths cannot be re-resolved to anything else.")
}
