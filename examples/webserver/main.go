// Webserver: the paper's Apache case study (§4.1). The httpd server runs
// inside a capability-based sandbox whose contract grants read-only
// access to configuration and content, socket creation, and write-only
// access to its log — and, unlike container-style isolation, the rest of
// the system stays live: this example adds new web content while the
// server is running and watches the log grow (§5: "programs running in
// a SHILL sandbox are not isolated from the rest of the system").
//
//	go run ./examples/webserver
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/shill"
)

func main() {
	s, err := shill.NewMachine(shill.WithConsoleLimit(1 << 20))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	w := shill.ApacheWorkload{FileMB: 1, Requests: 10, Concurrency: 4}
	s.BuildWWW(w)

	fmt.Println("Starting sandboxed httpd and running the benchmark client...")
	res, err := s.RunApache(context.Background(), shill.ModeSandboxed, w)
	if err != nil {
		log.Fatalf("apache: %v\nconsole: %s", err, s.ConsoleText())
	}
	out := res.Console
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "requests") || strings.Contains(line, "transferred") {
			fmt.Println(" ", strings.TrimSpace(line))
		}
	}

	logData, _ := s.ReadFile("/var/log/httpd-access.log")
	fmt.Printf("\naccess log (%d bytes), written through a write-only capability:\n", len(logData))
	lines := strings.Split(strings.TrimSpace(logData), "\n")
	for i, l := range lines {
		if i >= 3 {
			fmt.Printf("  ... %d more\n", len(lines)-3)
			break
		}
		fmt.Println(" ", l)
	}

	fmt.Println("\nWhat the contract denies:")
	fmt.Println("  - writing web content (docs capability is read-only)")
	fmt.Println("  - reading the log back (logs capability is write-only)")
	fmt.Println("  - any file outside conf, docs, logs, and its libraries")
}
