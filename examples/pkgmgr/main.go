// Pkgmgr: the paper's Emacs package-management case study (§4.1). The
// SHILL script provides download / unpack / configure / build / install
// / uninstall functions, each with its own fine-grained contract: only
// fetch can reach the network; install cannot read, alter, or remove
// existing files under the prefix; uninstall may remove exactly the
// files in its manifest.
//
//	go run ./examples/pkgmgr
package main

import (
	"context"
	"fmt"
	"log"

	"repro/shill"
)

func main() {
	s, err := shill.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	s.BuildEmacsOrigin(shill.DefaultEmacs)
	stop, err := s.StartOrigin()
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	fmt.Println("Running the full package-management pipeline (pkg_emacs.cap)...")
	if err := s.RunEmacsShill(context.Background()); err != nil {
		log.Fatalf("pkg_emacs: %v\nconsole: %s", err, s.ConsoleText())
	}
	fmt.Print(s.ConsoleText())

	fmt.Printf("sandboxes created: %d\n\n", s.SandboxCount())
	fmt.Println("Security interface recap:")
	fmt.Println("  fetch          socket factory + create-only Downloads capability")
	fmt.Println("  unpack         read tarball, full rights only inside the build area")
	fmt.Println("  configure/make full rights inside the build area, nothing outside")
	fmt.Println("  install        create-only under the prefix: existing files untouchable")
	fmt.Println("  uninstall      may remove exactly [bin/emacs, share/emacs/DOC]")

	// Show the install/uninstall end state.
	if _, err := s.ReadFile("/home/user/.local/bin/emacs"); err != nil {
		fmt.Println("\nafter uninstall: /home/user/.local/bin/emacs removed ✔")
	}
	if _, err := s.ReadFile("/home/user/.local/share/emacs"); err == nil {
		fmt.Println("after uninstall: directories outside the manifest preserved ✔")
	}

	// Demonstrate the uninstall manifest contract rejecting a broader
	// list.
	evil := `#lang shill/ambient
require "pkg_emacs.cap";

prefix = open_dir("/home/user/.local");
uninstall_emacs(prefix, ["bin/emacs", "share/emacs/DOC", "share"]);
`
	if _, err := s.DefaultSession().Run(context.Background(),
		shill.Script{Name: "evil.ambient", Source: evil}); err != nil {
		fmt.Printf("\nuninstalling beyond the manifest is a contract violation:\n%v\n", err)
	} else {
		log.Fatal("manifest contract failed to reject a broader file list")
	}
}
