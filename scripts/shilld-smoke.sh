#!/bin/sh
# shilld-smoke.sh — end-to-end smoke test of the execution service:
# start the daemon, drive it with 32 concurrent mixed clients (allowed,
# denied, and cancelled runs), assert that a denied script's response
# and the why-denied endpoint carry the structured provenance JSON,
# assert /v1/trace serves a well-formed span tree and /metrics the
# per-outcome latency histograms, then SIGTERM and assert a clean
# drain (exit 0, machines closed).
# Run from the repository root (CI does).
set -eu

ADDR=127.0.0.1:8377
BIN=$(mktemp -d)
PID=

fail() {
    echo "shilld-smoke: FAIL: $*" >&2
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    exit 1
}
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/shilld" ./cmd/shilld
go build -o "$BIN/shill-load" ./cmd/shill-load

"$BIN/shilld" -addr "$ADDR" &
PID=$!

# Readiness: /healthz answers ok once the listener is up.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -le 50 ] || fail "daemon did not come up on $ADDR"
    sleep 0.2
done

# 32 concurrent mixed clients. -check exits nonzero if any response had
# the wrong shape: an allowed run that failed, a denied run without
# structured provenance, a cancelled run that was not cancelled.
"$BIN/shill-load" -url "http://$ADDR" -c 32 -n 256 -mix 60/30/10 -check \
    || fail "shill-load -check"

# A denied script's run response carries the provenance inline.
RESP=$(curl -fsS "http://$ADDR/v1/run" \
    -d '{"tenant":"smoke","scriptName":"why_denied.ambient"}')
echo "$RESP" | grep -q '"layer":"capability"' || fail "run response lacks deciding layer: $RESP"
echo "$RESP" | grep -q '"missing":\["write"\]'  || fail "run response lacks missing privileges: $RESP"
echo "$RESP" | grep -q '"blame":'               || fail "run response lacks contract blame: $RESP"

# The audit endpoint explains the same denial with capability lineage —
# the shill-audit why-denied query path, over the wire.
WD=$(curl -fsS "http://$ADDR/v1/audit/why-denied?tenant=smoke")
echo "$WD" | grep -q '"kind":"cap-deny"' || fail "why-denied lacks the cap-deny event: $WD"
echo "$WD" | grep -q '"lineage":'        || fail "why-denied lacks capability lineage: $WD"

# The denied request decomposes post-hoc: /v1/trace serves a
# well-formed span tree — exactly one request-kind root per trace,
# every other span's parent resolving inside its trace, and the run
# stages (queue, run, compile, eval) present for the tenant.
TRACE=$(curl -fsS "http://$ADDR/v1/trace?tenant=smoke")
echo "$TRACE" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
spans = doc["spans"]
if not spans:
    sys.exit("no spans for tenant smoke")
by_trace = {}
for s in spans:
    by_trace.setdefault(s["traceId"], []).append(s)
kinds = set()
for tid, tree in by_trace.items():
    ids = {s["id"] for s in tree}
    roots = [s for s in tree if s.get("parent", 0) == 0]
    if len(roots) != 1 or roots[0]["kind"] != "request":
        sys.exit("trace %d: want exactly one request-kind root, got %r" % (tid, roots))
    for s in tree:
        p = s.get("parent", 0)
        if p and p not in ids:
            sys.exit("trace %d: span %d has dangling parent %d" % (tid, s["id"], p))
    kinds |= {s["kind"] for s in tree}
missing = {"request", "queue", "run", "compile", "eval"} - kinds
if missing:
    sys.exit("span stream lacks kinds %r" % missing)
print("trace ok: %d spans, %d traces, %d slowest retained"
      % (len(spans), len(by_trace), len(doc["slowest"])))
' || fail "/v1/trace span tree"

# Operability surface: counters plus the latency histograms.
METRICS=$(curl -fsS "http://$ADDR/metrics")
echo "$METRICS" | grep -q '^shilld_requests_total' \
    || fail "metrics lack shilld_requests_total"
echo "$METRICS" | grep -q '^shilld_run_seconds_bucket{outcome="deny"' \
    || fail "metrics lack deny-outcome latency buckets"

# Graceful drain: SIGTERM must finish in-flight work, close every
# machine, and exit 0.
kill -TERM "$PID"
STATUS=0
wait "$PID" || STATUS=$?
PID=
[ "$STATUS" -eq 0 ] || fail "drain exited $STATUS, want 0"

echo "shilld-smoke: ok"
