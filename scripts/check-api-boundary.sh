#!/bin/sh
# check-api-boundary.sh — keep the embedding boundary honest.
#
# The supported programmatic surface is repro/shill; commands and
# examples must build on it, never on the internal machine-assembly
# package. Run from the repository root (CI does).
set -eu

fail=0
for dir in cmd examples; do
    if matches=$(grep -rn '"repro/internal/core"' "$dir" 2>/dev/null); then
        echo "error: $dir/* imports repro/internal/core; use repro/shill instead:" >&2
        echo "$matches" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "api boundary ok: no internal/core imports under cmd/ or examples/"
