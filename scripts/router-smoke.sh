#!/bin/sh
# router-smoke.sh — end-to-end smoke test of the multi-replica serving
# path: start three shilld replicas behind shill-router, seed per-tenant
# machine state through the router, drive it with 32 concurrent mixed
# clients, SIGTERM one replica mid-run (the rolling-restart move), and
# assert that the load finishes with zero failed requests, the drained
# replica exits 0, no tenant is still routed to it, and every tenant's
# pre-drain machine state survived the migration.
# Run from the repository root (CI does).
set -eu

ROUTER=127.0.0.1:8378
R1=127.0.0.1:8381
R2=127.0.0.1:8382
R3=127.0.0.1:8383
BIN=$(mktemp -d)
PIDS=

fail() {
    echo "router-smoke: FAIL: $*" >&2
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    exit 1
}
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/shilld" ./cmd/shilld
go build -o "$BIN/shill-router" ./cmd/shill-router
go build -o "$BIN/shill-load" ./cmd/shill-load

# Three replicas. -handoff-grace makes a SIGTERM'd replica wait for the
# router to pull every tenant's state before it stops listening.
"$BIN/shilld" -addr "$R1" -handoff-grace 15s &
PID1=$!
"$BIN/shilld" -addr "$R2" -handoff-grace 15s &
PID2=$!
"$BIN/shilld" -addr "$R3" -handoff-grace 15s &
PID3=$!
PIDS="$PID1 $PID2 $PID3"

"$BIN/shill-router" -addr "$ROUTER" -replicas "http://$R1,http://$R2,http://$R3" &
RPID=$!
PIDS="$PIDS $RPID"

# Readiness: the router reports all three replicas up.
i=0
until curl -fsS "http://$ROUTER/v1/router/state" 2>/dev/null | grep -q '"up":3'; do
    i=$((i+1))
    [ "$i" -le 50 ] || fail "router did not see 3 healthy replicas"
    sleep 0.2
done

# Seed machine state for the four tenants the load generator will use:
# each writes a marker file only its own machine holds. Losing one in
# the restart below would be losing tenant state.
for t in t0 t1 t2 t3; do
    RESP=$(curl -fsS "http://$ROUTER/v1/run" -d '{"tenant":"'"$t"'","script":"#lang shill/ambient\n\nhome = open_dir(\"/home/user\");\nf = create_file(home, \"state.txt\");\nappend(f, \"state-'"$t"'\");\n"}')
    echo "$RESP" | grep -q '"exitStatus":0' || fail "seeding $t: $RESP"
done

# 32 concurrent mixed clients for 4 seconds, through the router. The
# server-stats scrape is skipped: the router's /metrics is the fan-in
# view, not one daemon's histograms.
"$BIN/shill-load" -url "http://$ROUTER" -c 32 -duration 4s -mix 60/30/10 \
    -check -server-stats=false >"$BIN/load.out" 2>&1 &
LPID=$!

# Mid-run, SIGTERM one replica — the rolling restart. Its tenants must
# migrate (with state) to the survivors while the load keeps flowing.
sleep 1
kill -TERM "$PID2"
STATUS=0
wait "$PID2" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "drained replica exited $STATUS, want 0"
PIDS="$PID1 $PID3 $RPID $LPID"

# The load must finish with zero malformed responses and zero transport
# errors — the restart shows up as latency, never as failures.
STATUS=0
wait "$LPID" || STATUS=$?
cat "$BIN/load.out"
[ "$STATUS" -eq 0 ] || fail "shill-load -check failed across the restart"
PIDS="$PID1 $PID3 $RPID"

# No tenant may still be routed to the drained replica (its URL still
# appears in the replicas array, so match tenant-map entries only).
STATE=$(curl -fsS "http://$ROUTER/v1/router/state")
echo "$STATE" | grep -Eq '"t[0-9]+":"http://'"$R2"'"' && fail "tenants still routed to drained replica: $STATE"
echo "$STATE" | grep -q '"migrations":0' && fail "no migrations recorded: $STATE"

# Zero lost tenants: every seeded marker file still reads back through
# the router, wherever the tenant lives now.
for t in t0 t1 t2 t3; do
    RESP=$(curl -fsS "http://$ROUTER/v1/run" -d '{"tenant":"'"$t"'","script":"#lang shill/ambient\n\nappend(stdout, read(open_file(\"/home/user/state.txt\")));\n"}')
    echo "$RESP" | grep -q '"console":"state-'"$t"'"' || fail "tenant $t lost state across the restart: $RESP"
done

# The fan-in /metrics carries router series, per-replica labels, and
# the replica="all" aggregate.
METRICS=$(curl -fsS "http://$ROUTER/metrics")
echo "$METRICS" | grep -q '^shill_router_requests_total' || fail "metrics lack shill_router_requests_total"
echo "$METRICS" | grep -q 'replica="all"' || fail "metrics lack the replica=\"all\" aggregate"

for p in $PIDS; do kill "$p" 2>/dev/null || true; done
echo "router-smoke: ok"
